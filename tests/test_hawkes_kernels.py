"""Fast-kernel vs naive-loop equivalence for the Hawkes statistical core.

The naive reference implementations below are straight transcriptions of
the historical per-event Python loops the vectorized kernels replaced.
They pin down two contracts:

* **EM is bit-identical**: the vectorized fitter must reproduce the
  historical EM output exactly (``np.array_equal``, not ``allclose``) —
  the rewrite is a pure algebraic reorganization.
* **Gibbs is distributionally equivalent**: the segmented attribution
  sampler draws from the same conditional law as the historical
  per-event ``multinomial`` sampler, so posterior means agree across
  seeds within Monte-Carlo tolerance (the draw *streams* differ by
  design).
"""

import numpy as np
import pytest
from scipy.special import gammaln

from repro.core.events import DiscreteEvents
from repro.core.hawkes import kernels
from repro.core.hawkes.basis import DirichletLagBasis, LogBinnedLagBasis
from repro.core.hawkes.inference import (
    Priors,
    _initial_state,
    fit_em,
    fit_gibbs,
)
from repro.core.hawkes.model import (
    HawkesParams,
    discrete_log_likelihood,
    expected_rate,
    rate_integral,
)
from repro.core.hawkes.simulation import simulate_branching


# ---------------------------------------------------------------------------
# Naive reference implementations (historical per-event loops)
# ---------------------------------------------------------------------------

class NaiveParentStructure:
    """Loop-built candidate arrays, as the original implementation did."""

    def __init__(self, events, basis):
        self.events = events
        self.basis = basis
        ev_bins = events.bins
        self.cand_src, self.cand_lag = [], []
        self.cand_cnt, self.cand_bucket = [], []
        for m in range(len(events)):
            t = int(ev_bins[m])
            lo = np.searchsorted(ev_bins, t - basis.max_lag, side="left")
            hi = np.searchsorted(ev_bins, t, side="left")
            idx = np.arange(lo, hi)
            lags = (t - ev_bins[idx]).astype(np.int64)
            self.cand_src.append(events.processes[idx].astype(np.int64))
            self.cand_lag.append(lags)
            self.cand_cnt.append(events.counts[idx].astype(np.float64))
            self.cand_bucket.append(basis.bucket_of[lags - 1])
        sizes = [len(src) for src in self.cand_src]
        self.offsets = np.concatenate([[0], np.cumsum(sizes)])
        if self.offsets[-1]:
            self.flat_src = np.concatenate(self.cand_src)
            self.flat_lag = np.concatenate(self.cand_lag)
            self.flat_cnt = np.concatenate(self.cand_cnt)
            self.flat_bucket = np.concatenate(self.cand_bucket)
            self.flat_dst = np.repeat(
                events.processes.astype(np.int64), sizes)
        else:
            self.flat_src = np.empty(0, dtype=np.int64)
            self.flat_lag = np.empty(0, dtype=np.int64)
            self.flat_cnt = np.empty(0, dtype=np.float64)
            self.flat_bucket = np.empty(0, dtype=np.int64)
            self.flat_dst = np.empty(0, dtype=np.int64)

    def all_candidate_values(self, weights, lag_pmf):
        if not len(self.flat_src):
            return np.empty(0, dtype=np.float64)
        return (self.flat_cnt
                * weights[self.flat_src, self.flat_dst]
                * lag_pmf[self.flat_src, self.flat_dst, self.flat_lag - 1])

    def exposure(self, lag_cdf):
        events = self.events
        k_procs = events.n_processes
        out = np.zeros((k_procs, k_procs))
        remaining = events.n_bins - 1 - events.bins
        capped = np.minimum(remaining, self.basis.max_lag)
        for m in range(len(events)):
            cap = int(capped[m])
            if cap <= 0:
                continue
            src = int(events.processes[m])
            out[src, :] += events.counts[m] * lag_cdf[src, :, cap - 1]
        return out


def naive_expected_rate(params, events, query_bins=None):
    if query_bins is None:
        query_bins = np.unique(events.bins)
    query_bins = np.asarray(query_bins, dtype=np.int64)
    kernel = params.branching_kernel()
    rates = np.tile(params.background, (len(query_bins), 1))
    if not len(events):
        return rates
    ev_bins = events.bins
    for qi, t in enumerate(query_bins):
        lo = np.searchsorted(ev_bins, t - params.max_lag, side="left")
        hi = np.searchsorted(ev_bins, t, side="left")
        for m in range(lo, hi):
            lag = int(t - ev_bins[m])
            src = int(events.processes[m])
            rates[qi, :] += events.counts[m] * kernel[src, :, lag - 1]
    return rates


def naive_rate_integral(params, events):
    total = params.background * events.n_bins
    if not len(events):
        return total
    cdf = np.cumsum(params.impulse, axis=2)
    remaining = events.n_bins - 1 - events.bins
    capped = np.minimum(remaining, params.max_lag)
    for m in range(len(events)):
        cap = int(capped[m])
        if cap <= 0:
            continue
        src = int(events.processes[m])
        total += (events.counts[m] * params.weights[src, :]
                  * cdf[src, :, cap - 1])
    return total


def naive_log_likelihood(params, events):
    integral = float(naive_rate_integral(params, events).sum())
    if not len(events):
        return -integral
    rates = naive_expected_rate(params, events)
    uniq = np.unique(events.bins)
    row_of = {int(t): i for i, t in enumerate(uniq)}
    log_term = 0.0
    for m in range(len(events)):
        lam = rates[row_of[int(events.bins[m])], int(events.processes[m])]
        if lam <= 0:
            return -np.inf
        count = int(events.counts[m])
        log_term += count * np.log(lam) - float(gammaln(count + 1))
    return log_term - integral


def naive_fit_em(events, max_lag, basis=None, priors=None,
                 max_iterations=200, tol=1e-6):
    """Transcription of the historical EM fitter (per-event loop kernels)."""
    priors = priors or Priors()
    basis = basis or LogBinnedLagBasis(max_lag)
    k_procs = events.n_processes
    structure = NaiveParentStructure(events, basis)
    background, weights, buckets = _initial_state(events, basis, priors)

    previous_ll = -np.inf
    iterations_run = 0
    for iteration in range(max_iterations):
        iterations_run = iteration + 1
        lag_pmf = basis.expand(buckets)
        z_background = np.zeros(k_procs)
        flat_vals = structure.all_candidate_values(weights, lag_pmf)
        offsets = structure.offsets
        counts = events.counts.astype(np.float64)
        dst_all = events.processes.astype(np.int64)
        if len(flat_vals):
            seg_sums = np.add.reduceat(
                np.concatenate([flat_vals, [0.0]]), offsets[:-1])
            seg_sums[offsets[:-1] == offsets[1:]] = 0.0
        else:
            seg_sums = np.zeros(len(events))
        totals = background[dst_all] + seg_sums
        safe = totals > 0
        bg_resp = np.where(safe, counts * background[dst_all]
                           / np.where(safe, totals, 1.0), counts)
        np.add.at(z_background, dst_all, bg_resp)
        z_weight = np.zeros((k_procs, k_procs))
        z_bucket = np.zeros((k_procs, k_procs, basis.n_buckets))
        if len(flat_vals):
            scale = np.where(safe, counts / np.where(safe, totals, 1.0),
                             0.0)
            flat_resp = flat_vals * np.repeat(scale, np.diff(offsets))
            np.add.at(z_weight, (structure.flat_src, structure.flat_dst),
                      flat_resp)
            np.add.at(z_bucket,
                      (structure.flat_src, structure.flat_dst,
                       structure.flat_bucket), flat_resp)
        background = ((priors.background_shape - 1.0 + z_background)
                      / (priors.background_rate + events.n_bins))
        background = np.maximum(background, 1e-12)
        lag_cdf = np.cumsum(lag_pmf, axis=2)
        exposure = structure.exposure(lag_cdf)
        weights = ((priors.weight_shape - 1.0 + z_weight)
                   / (priors.weight_rate + exposure))
        weights = np.maximum(weights, 0.0)
        conc = priors.impulse_concentration - 1.0 + z_bucket
        conc = np.maximum(conc, 1e-12)
        buckets = conc / conc.sum(axis=2, keepdims=True)

        params = HawkesParams(background=background, weights=weights,
                              impulse=basis.expand(buckets))
        current_ll = naive_log_likelihood(params, events)
        if abs(current_ll - previous_ll) < tol * (1 + abs(previous_ll)):
            previous_ll = current_ll
            break
        previous_ll = current_ll

    params = HawkesParams(background=background, weights=weights,
                          impulse=basis.expand(buckets))
    return params, previous_ll, iterations_run


def naive_fit_gibbs(events, max_lag, basis=None, priors=None,
                    n_iterations=120, burn_in=40, rng=None):
    """Transcription of the historical per-event multinomial sampler."""
    rng = rng or np.random.default_rng()
    priors = priors or Priors()
    basis = basis or LogBinnedLagBasis(max_lag)
    k_procs = events.n_processes
    structure = NaiveParentStructure(events, basis)
    background, weights, buckets = _initial_state(events, basis, priors)

    kept_bg, kept_w, kept_buckets = [], [], []
    for sweep in range(n_iterations):
        lag_pmf = basis.expand(buckets)
        z_background = np.zeros(k_procs)
        z_weight = np.zeros((k_procs, k_procs))
        z_bucket = np.zeros((k_procs, k_procs, basis.n_buckets))
        flat_vals = structure.all_candidate_values(weights, lag_pmf)
        flat_draws = np.zeros(len(flat_vals))
        offsets = structure.offsets
        for m in range(len(events)):
            vals = flat_vals[offsets[m]:offsets[m + 1]]
            count = int(events.counts[m])
            dst = int(events.processes[m])
            total = background[dst] + vals.sum()
            if total <= 0:
                z_background[dst] += count
                continue
            probs = np.empty(len(vals) + 1)
            probs[0] = background[dst]
            probs[1:] = vals
            draws = rng.multinomial(count, probs / total)
            z_background[dst] += draws[0]
            if len(draws) > 1 and draws[1:].any():
                flat_draws[offsets[m]:offsets[m + 1]] = draws[1:]
        if len(flat_draws):
            np.add.at(z_weight, (structure.flat_src, structure.flat_dst),
                      flat_draws)
            np.add.at(z_bucket,
                      (structure.flat_src, structure.flat_dst,
                       structure.flat_bucket), flat_draws)
        background = rng.gamma(
            priors.background_shape + z_background,
            1.0 / (priors.background_rate + events.n_bins))
        lag_cdf = np.cumsum(lag_pmf, axis=2)
        exposure = structure.exposure(lag_cdf)
        weights = rng.gamma(priors.weight_shape + z_weight,
                            1.0 / (priors.weight_rate + exposure))
        conc = priors.impulse_concentration + z_bucket
        buckets = rng.gamma(conc, 1.0)
        buckets = np.maximum(buckets, 1e-12)
        buckets /= buckets.sum(axis=2, keepdims=True)
        if sweep >= burn_in:
            kept_bg.append(background.copy())
            kept_w.append(weights.copy())
            kept_buckets.append(buckets.copy())
    return (np.mean(kept_bg, axis=0), np.mean(kept_w, axis=0))


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------

def make_params(k=2, max_lag=30):
    weights = np.array([[0.30, 0.12], [0.06, 0.25]])[:k, :k]
    pmf = np.exp(-np.arange(1, max_lag + 1) / 6.0)
    pmf /= pmf.sum()
    return HawkesParams(
        background=np.array([0.012, 0.008])[:k],
        weights=weights,
        impulse=np.tile(pmf, (k, k, 1)),
    )


@pytest.fixture(scope="module")
def medium_case():
    params = make_params()
    events = simulate_branching(params, 4000, np.random.default_rng(5))
    assert len(events) > 50
    return params, events


# ---------------------------------------------------------------------------
# Structure and model kernels vs naive loops
# ---------------------------------------------------------------------------

class TestParentStructureKernel:
    def test_matches_naive_arrays(self, medium_case):
        _, events = medium_case
        basis = LogBinnedLagBasis(30, 6)
        fast = kernels.ParentStructure(events, basis)
        naive = NaiveParentStructure(events, basis)
        assert np.array_equal(fast.offsets, naive.offsets)
        assert np.array_equal(fast.flat_src, naive.flat_src)
        assert np.array_equal(fast.flat_lag, naive.flat_lag)
        assert np.array_equal(fast.flat_cnt, naive.flat_cnt)
        assert np.array_equal(fast.flat_bucket, naive.flat_bucket)
        assert np.array_equal(fast.flat_dst, naive.flat_dst)

    def test_candidate_values_bit_equal(self, medium_case):
        _, events = medium_case
        basis = LogBinnedLagBasis(30, 6)
        fast = kernels.ParentStructure(events, basis)
        naive = NaiveParentStructure(events, basis)
        rng = np.random.default_rng(0)
        weights = rng.uniform(0.01, 0.4, (2, 2))
        lag_pmf = basis.expand(rng.dirichlet(np.ones(basis.n_buckets),
                                             size=(2, 2)))
        assert np.array_equal(fast.all_candidate_values(weights, lag_pmf),
                              naive.all_candidate_values(weights, lag_pmf))

    def test_empty_events(self):
        events = DiscreteEvents.from_pairs([], n_bins=50, n_processes=2)
        structure = kernels.ParentStructure(events, DirichletLagBasis(10))
        assert len(structure.flat_src) == 0
        assert structure.offsets.tolist() == [0]
        assert structure.cand_src == []
        vals = structure.all_candidate_values(
            np.ones((2, 2)), np.full((2, 2, 10), 0.1))
        assert len(vals) == 0

    def test_all_candidates_beyond_max_lag(self):
        events = DiscreteEvents.from_pairs(
            [(0, 0), (50, 1), (100, 0)], n_bins=200, n_processes=2)
        structure = kernels.ParentStructure(events, DirichletLagBasis(10))
        assert structure.sizes.tolist() == [0, 0, 0]
        assert len(structure.flat_src) == 0

    def test_single_process(self):
        events = DiscreteEvents.from_pairs(
            [(0, 0), (2, 0), (3, 0)], n_bins=10, n_processes=1)
        structure = kernels.ParentStructure(events, DirichletLagBasis(5))
        assert structure.sizes.tolist() == [0, 1, 2]
        vals = structure.all_candidate_values(
            np.array([[0.5]]), np.full((1, 1, 5), 0.2))
        assert vals == pytest.approx([0.1, 0.1, 0.1])

    def test_exposure_zero_for_cap_nonpositive_rows(self):
        # Event in the final bin has no post-event window at all.
        events = DiscreteEvents.from_pairs(
            [(99, 0)], n_bins=100, n_processes=1)
        cdf = np.cumsum(np.full((1, 1, 10), 0.1), axis=2)
        assert np.array_equal(kernels.exposure(events, cdf, 10),
                              np.zeros((1, 1)))

    def test_exposure_bit_equal_to_naive(self, medium_case):
        _, events = medium_case
        basis = LogBinnedLagBasis(30, 6)
        naive = NaiveParentStructure(events, basis)
        rng = np.random.default_rng(1)
        pmf = rng.dirichlet(np.ones(30), size=(2, 2))
        cdf = np.cumsum(pmf, axis=2)
        assert np.array_equal(kernels.exposure(events, cdf, 30),
                              naive.exposure(cdf))

    def test_zero_count_process_row(self):
        # Process 1 never fires: its exposure row still accumulates from
        # nothing and its candidate arrays never reference it as source.
        events = DiscreteEvents.from_pairs(
            [(0, 0), (3, 0)], n_bins=100, n_processes=2)
        basis = DirichletLagBasis(10)
        structure = kernels.ParentStructure(events, basis)
        assert not np.any(structure.flat_src == 1)
        cdf = np.cumsum(np.full((2, 2, 10), 0.1), axis=2)
        assert np.all(structure.exposure(cdf)[1] == 0)


class TestModelKernels:
    def test_expected_rate_bit_equal(self, medium_case):
        params, events = medium_case
        assert np.array_equal(expected_rate(params, events),
                              naive_expected_rate(params, events))

    def test_expected_rate_custom_query_bit_equal(self, medium_case):
        params, events = medium_case
        query = np.arange(0, events.n_bins, 7)
        assert np.array_equal(
            expected_rate(params, events, query_bins=query),
            naive_expected_rate(params, events, query_bins=query))

    def test_rate_integral_bit_equal(self, medium_case):
        params, events = medium_case
        assert np.array_equal(rate_integral(params, events),
                              naive_rate_integral(params, events))

    def test_log_likelihood_bit_equal(self, medium_case):
        params, events = medium_case
        assert (discrete_log_likelihood(params, events)
                == naive_log_likelihood(params, events))

    def test_log_likelihood_zero_rate_is_neg_inf(self):
        events = DiscreteEvents.from_pairs([(5, 0)], n_bins=10,
                                           n_processes=1)
        params = HawkesParams(background=np.array([0.0]),
                              weights=np.array([[0.0]]),
                              impulse=np.full((1, 1, 5), 0.2))
        assert discrete_log_likelihood(params, events) == -np.inf

    def test_empty_events_likelihood(self):
        events = DiscreteEvents.from_pairs([], n_bins=100, n_processes=1)
        params = HawkesParams(background=np.array([0.03]),
                              weights=np.array([[0.1]]),
                              impulse=np.full((1, 1, 5), 0.2))
        assert (discrete_log_likelihood(params, events)
                == naive_log_likelihood(params, events))


class TestKernelCaching:
    def test_pickle_drops_kernel_cache(self):
        import pickle

        params = make_params(max_lag=10)
        events = simulate_branching(params, 800, np.random.default_rng(2))
        cold = len(pickle.dumps(events))
        fit_em(events, 10, basis=LogBinnedLagBasis(10, 4),
               max_iterations=3)
        assert len(pickle.dumps(events)) == cold
        clone = pickle.loads(pickle.dumps(events))
        assert np.array_equal(clone.bins, events.bins)
        # The clone is fully functional (cache rebuilds on demand).
        fit_em(clone, 10, basis=LogBinnedLagBasis(10, 4),
               max_iterations=2)

    def test_cascade_to_events_memoized_by_content(self):
        from repro.core.influence import UrlCascade, cascade_to_events
        from repro.news.domains import NewsCategory

        def build():
            return UrlCascade("u", NewsCategory.ALTERNATIVE,
                              ((0.0, "Twitter"), (90.0, "/pol/")))

        first = cascade_to_events(build(), memoize=True)
        assert cascade_to_events(build(), memoize=True) is first
        # The batch path stays memo-free: fresh object every call.
        assert cascade_to_events(build()) is not cascade_to_events(build())

    def test_add_rates_chunking_preserves_bit_identity(
            self, medium_case, monkeypatch):
        params, events = medium_case
        monkeypatch.setattr(kernels, "_SCATTER_CHUNK", 7)
        query = np.arange(events.n_bins)
        assert np.array_equal(
            expected_rate(params, events, query_bins=query),
            naive_expected_rate(params, events, query_bins=query))


    def test_parent_structure_cached_per_basis_content(self):
        events = DiscreteEvents.from_pairs(
            [(0, 0), (5, 1)], n_bins=50, n_processes=2)
        b1 = LogBinnedLagBasis(20, 4)
        first = kernels.get_parent_structure(events, b1)
        assert kernels.get_parent_structure(events, b1) is first
        # Equal-content basis object hits the same cache entry.
        assert kernels.get_parent_structure(
            events, LogBinnedLagBasis(20, 4)) is first
        # Different content misses.
        other = kernels.get_parent_structure(events, DirichletLagBasis(20))
        assert other is not first

    def test_query_structure_and_unique_bins_cached(self):
        events = DiscreteEvents.from_pairs(
            [(0, 0), (5, 1), (5, 0)], n_bins=50, n_processes=2)
        assert kernels.unique_bins(events) is kernels.unique_bins(events)
        first = kernels.get_query_structure(events, 10)
        assert kernels.get_query_structure(events, 10) is first
        assert kernels.get_query_structure(events, 20) is not first

    def test_fitters_share_cached_structure(self):
        params = make_params(max_lag=10)
        events = simulate_branching(params, 500, np.random.default_rng(0))
        basis = LogBinnedLagBasis(10, 4)
        fit_em(events, 10, basis=basis, max_iterations=3)
        cached = kernels.get_parent_structure(events, basis)
        fit_gibbs(events, 10, basis=basis, n_iterations=6, burn_in=2,
                  rng=np.random.default_rng(0))
        assert kernels.get_parent_structure(events, basis) is cached


# ---------------------------------------------------------------------------
# Fitter-level golden tests
# ---------------------------------------------------------------------------

class TestEmGolden:
    def test_bit_identical_to_historical_em(self, medium_case):
        """The vectorized EM is a pure algebraic reorganization."""
        _, events = medium_case
        basis = LogBinnedLagBasis(30, 6)
        fast = fit_em(events, 30, basis=basis, max_iterations=40)
        naive_params, naive_ll, naive_iters = naive_fit_em(
            events, 30, basis=basis, max_iterations=40)
        assert fast.n_iterations == naive_iters
        assert fast.log_likelihood == naive_ll
        assert np.array_equal(fast.background, naive_params.background)
        assert np.array_equal(fast.weights, naive_params.weights)
        assert np.array_equal(fast.params.impulse, naive_params.impulse)

    def test_bit_identical_with_nondefault_priors(self, medium_case):
        _, events = medium_case
        basis = DirichletLagBasis(30)
        priors = Priors(background_rate=50.0, weight_rate=4.0,
                        impulse_concentration=2.0)
        fast = fit_em(events, 30, basis=basis, priors=priors,
                      max_iterations=12)
        naive_params, naive_ll, _ = naive_fit_em(
            events, 30, basis=basis, priors=priors, max_iterations=12)
        assert fast.log_likelihood == naive_ll
        assert np.array_equal(fast.weights, naive_params.weights)


class TestGibbsEquivalence:
    def test_posterior_means_match_historical_sampler(self, medium_case):
        """Same conditional law, different draw stream: posterior means
        averaged across seeds agree within Monte-Carlo tolerance."""
        _, events = medium_case
        basis = LogBinnedLagBasis(30, 6)
        seeds = [0, 1, 2]
        new_w = np.mean([
            fit_gibbs(events, 30, basis=basis, n_iterations=60, burn_in=20,
                      rng=np.random.default_rng(s),
                      keep_samples=False).weights
            for s in seeds], axis=0)
        old_w = np.mean([
            naive_fit_gibbs(events, 30, basis=basis, n_iterations=60,
                            burn_in=20, rng=np.random.default_rng(s))[1]
            for s in seeds], axis=0)
        assert np.allclose(new_w, old_w, rtol=0.25, atol=0.03)

    def test_attribution_counts_conserved(self, medium_case):
        _, events = medium_case
        basis = LogBinnedLagBasis(30, 6)
        structure = kernels.get_parent_structure(events, basis)
        background = np.full(2, 0.01)
        lag_pmf = basis.expand(np.full((2, 2, basis.n_buckets),
                                       1.0 / basis.n_buckets))
        flat_vals = structure.all_candidate_values(
            np.full((2, 2), 0.2), lag_pmf)
        z_bg, flat_draws = kernels.sample_parent_attributions(
            structure, background, flat_vals, np.random.default_rng(0))
        assert z_bg.sum() + flat_draws.sum() == events.total_events
        # Per-entry conservation: each entry's draws sum to its count.
        per_entry = np.add.reduceat(
            np.concatenate([flat_draws, [0.0]]), structure.offsets[:-1])
        per_entry[structure.sizes == 0] = 0.0
        assert np.all(per_entry <= events.counts)

    def test_no_parents_all_background(self):
        events = DiscreteEvents.from_pairs(
            [(0, 0), (50, 1)], n_bins=200, n_processes=2)
        structure = kernels.ParentStructure(events, DirichletLagBasis(10))
        flat_vals = structure.all_candidate_values(
            np.ones((2, 2)), np.full((2, 2, 10), 0.1))
        z_bg, flat_draws = kernels.sample_parent_attributions(
            structure, np.array([0.01, 0.01]), flat_vals,
            np.random.default_rng(0))
        assert z_bg.tolist() == [1.0, 1.0]
        assert flat_draws.sum() == 0

    def test_zero_total_mass_falls_back_to_background(self):
        events = DiscreteEvents.from_pairs(
            [(0, 0), (1, 0)], n_bins=10, n_processes=1)
        structure = kernels.ParentStructure(events, DirichletLagBasis(5))
        flat_vals = structure.all_candidate_values(
            np.zeros((1, 1)), np.full((1, 1, 5), 0.2))
        z_bg, flat_draws = kernels.sample_parent_attributions(
            structure, np.zeros(1), flat_vals, np.random.default_rng(0))
        assert z_bg.tolist() == [2.0]
        assert flat_draws.sum() == 0

    def test_sampler_deterministic_given_seed(self, medium_case):
        _, events = medium_case
        basis = LogBinnedLagBasis(30, 6)
        runs = [fit_gibbs(events, 30, basis=basis, n_iterations=12,
                          burn_in=4, rng=np.random.default_rng(9))
                for _ in range(2)]
        assert np.array_equal(runs[0].weights, runs[1].weights)
        assert np.array_equal(runs[0].background, runs[1].background)
        assert runs[0].log_likelihood == runs[1].log_likelihood

    def test_single_process_fit(self):
        params = HawkesParams(background=np.array([0.02]),
                              weights=np.array([[0.3]]),
                              impulse=np.tile(
                                  np.full(10, 0.1), (1, 1, 1)))
        events = simulate_branching(params, 2000,
                                    np.random.default_rng(3))
        result = fit_gibbs(events, 10, n_iterations=40, burn_in=10,
                           rng=np.random.default_rng(4))
        assert result.params.n_processes == 1
        assert np.isfinite(result.log_likelihood)


class TestSegmentHelpers:
    def test_segment_ranges(self):
        flat, sizes, offsets = kernels.segment_ranges(
            np.array([0, 2, 5]), np.array([3, 2, 8]))
        assert flat.tolist() == [0, 1, 2, 5, 6, 7]
        assert sizes.tolist() == [3, 0, 3]
        assert offsets.tolist() == [0, 3, 3, 6]

    def test_segment_ranges_empty(self):
        flat, sizes, offsets = kernels.segment_ranges(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert len(flat) == 0
        assert offsets.tolist() == [0]

    def test_sequential_row_sum_matches_loop(self):
        rng = np.random.default_rng(0)
        rows = rng.normal(size=(40, 3)) * 10.0 ** rng.integers(
            -8, 8, size=(40, 1))
        init = rng.normal(size=3)
        acc = init.copy()
        for row in rows:
            acc += row
        assert np.array_equal(
            kernels.sequential_row_sum(rows, init), acc)
