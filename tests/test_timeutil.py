"""Tests for repro.timeutil interval arithmetic and conversions."""

import pytest
from hypothesis import given, strategies as st

from repro.timeutil import (
    Interval,
    SECONDS_PER_DAY,
    day_index,
    in_any_interval,
    merge_intervals,
    minute_index,
    to_datetime,
    total_overlap,
    utc,
)


class TestUtc:
    def test_epoch_origin(self):
        assert utc(1970, 1, 1) == 0

    def test_known_date(self):
        # 2016-06-30T00:00:00Z
        assert utc(2016, 6, 30) == 1467244800

    def test_round_trip(self):
        epoch = utc(2016, 11, 8, 12, 30, 15)
        dt = to_datetime(epoch)
        assert (dt.year, dt.month, dt.day) == (2016, 11, 8)
        assert (dt.hour, dt.minute, dt.second) == (12, 30, 15)

    def test_day_index(self):
        origin = utc(2016, 6, 30)
        assert day_index(origin, origin) == 0
        assert day_index(origin + SECONDS_PER_DAY - 1, origin) == 0
        assert day_index(origin + SECONDS_PER_DAY, origin) == 1

    def test_minute_index(self):
        assert minute_index(120.0, 0.0) == 2
        assert minute_index(119.9, 0.0) == 1


class TestInterval:
    def test_duration(self):
        assert Interval(10, 30).duration == 20

    def test_invalid_order_raises(self):
        with pytest.raises(ValueError):
            Interval(30, 10)

    def test_empty_interval_allowed(self):
        assert Interval(5, 5).duration == 0

    def test_contains_half_open(self):
        iv = Interval(10, 20)
        assert iv.contains(10)
        assert iv.contains(19.999)
        assert not iv.contains(20)
        assert not iv.contains(9.999)

    def test_overlaps(self):
        assert Interval(0, 10).overlaps(Interval(5, 15))
        assert not Interval(0, 10).overlaps(Interval(10, 20))

    def test_intersect(self):
        cut = Interval(0, 10).intersect(Interval(5, 15))
        assert cut == Interval(5, 10)

    def test_intersect_disjoint_is_none(self):
        assert Interval(0, 10).intersect(Interval(10, 20)) is None

    def test_iter_days_covers_span(self):
        start = utc(2016, 7, 1, 12)
        iv = Interval(start, start + 2 * SECONDS_PER_DAY)
        days = list(iv.iter_days())
        assert len(days) == 3  # partial first day + 2 more midnights
        assert all(d % SECONDS_PER_DAY == 0 for d in days)


class TestIntervalSets:
    def test_in_any_interval(self):
        gaps = [Interval(0, 10), Interval(20, 30)]
        assert in_any_interval(5, gaps)
        assert in_any_interval(25, gaps)
        assert not in_any_interval(15, gaps)

    def test_total_overlap(self):
        iv = Interval(0, 100)
        others = [Interval(10, 20), Interval(90, 150)]
        assert total_overlap(iv, others) == 20

    def test_merge_intervals(self):
        merged = merge_intervals([Interval(0, 10), Interval(5, 20),
                                  Interval(30, 40)])
        assert merged == [Interval(0, 20), Interval(30, 40)]

    def test_merge_adjacent(self):
        merged = merge_intervals([Interval(0, 10), Interval(10, 20)])
        assert merged == [Interval(0, 20)]

    def test_merge_empty(self):
        assert merge_intervals([]) == []


@given(st.integers(0, 10**9), st.integers(0, 10**6))
def test_interval_contains_start_not_end(start, length):
    iv = Interval(start, start + length)
    if length:
        assert iv.contains(start)
    assert not iv.contains(start + length)


@given(st.lists(st.tuples(st.integers(0, 1000), st.integers(0, 100)),
                max_size=20))
def test_merged_intervals_are_disjoint_and_sorted(spans):
    intervals = [Interval(s, s + d) for s, d in spans]
    merged = merge_intervals(intervals)
    for a, b in zip(merged, merged[1:]):
        assert a.end < b.start  # strictly disjoint, non-adjacent
    # every original point stays covered
    for iv in intervals:
        if iv.duration:
            assert in_any_interval(iv.start, merged)
