"""Tests for the Twitter platform simulator."""

import pytest

from repro.platforms.twitter import TWEET_MAX_CHARS, TwitterError, TwitterPlatform


@pytest.fixture()
def twitter():
    return TwitterPlatform()


@pytest.fixture()
def user(twitter):
    return twitter.register_user("alice", created_at=0)


class TestAccounts:
    def test_register(self, twitter):
        user = twitter.register_user("bob", created_at=10, is_bot=True,
                                     followers=42)
        assert twitter.users[user.user_id].is_bot
        assert user.followers == 42

    def test_unique_ids(self, twitter):
        a = twitter.register_user("a", 0)
        b = twitter.register_user("b", 0)
        assert a.user_id != b.user_id

    def test_suspend(self, twitter, user):
        twitter.suspend_user(user.user_id)
        assert twitter.users[user.user_id].suspended

    def test_suspend_unknown_raises(self, twitter):
        with pytest.raises(TwitterError):
            twitter.suspend_user("nope")

    def test_author_view(self, user):
        author = user.as_author()
        assert author.handle == "alice"
        assert not author.is_bot


class TestTweeting:
    def test_post(self, twitter, user):
        tweet = twitter.post_tweet(user.user_id, "hello", 100)
        assert tweet.created_at == 100
        assert not tweet.is_retweet
        assert twitter.tweets[tweet.tweet_id] is tweet

    def test_firehose_order(self, twitter, user):
        t1 = twitter.post_tweet(user.user_id, "a", 1)
        t2 = twitter.post_tweet(user.user_id, "b", 2)
        assert twitter.firehose == [t1, t2]

    def test_140_char_limit(self, twitter, user):
        with pytest.raises(TwitterError):
            twitter.post_tweet(user.user_id, "x" * (TWEET_MAX_CHARS + 1), 0)

    def test_exactly_140_ok(self, twitter, user):
        tweet = twitter.post_tweet(user.user_id, "x" * TWEET_MAX_CHARS, 0)
        assert len(tweet.text) == TWEET_MAX_CHARS

    def test_suspended_cannot_post(self, twitter, user):
        twitter.suspend_user(user.user_id)
        with pytest.raises(TwitterError):
            twitter.post_tweet(user.user_id, "hi", 0)

    def test_unknown_user_cannot_post(self, twitter):
        with pytest.raises(TwitterError):
            twitter.post_tweet("ghost", "hi", 0)

    def test_hashtags_recorded(self, twitter, user):
        tweet = twitter.post_tweet(user.user_id, "hi", 0,
                                   hashtags=("maga",))
        assert tweet.hashtags == ("maga",)


class TestRetweets:
    def test_retweet_increments_count(self, twitter, user):
        other = twitter.register_user("bob", 0)
        original = twitter.post_tweet(user.user_id, "story", 0)
        rt = twitter.retweet(other.user_id, original.tweet_id, 5)
        assert original.retweet_count == 1
        assert rt.retweet_of == original.tweet_id
        assert rt.is_retweet
        assert "RT @alice" in rt.text

    def test_retweet_of_retweet_credits_original(self, twitter, user):
        b = twitter.register_user("b", 0)
        c = twitter.register_user("c", 0)
        original = twitter.post_tweet(user.user_id, "story", 0)
        rt1 = twitter.retweet(b.user_id, original.tweet_id, 1)
        rt2 = twitter.retweet(c.user_id, rt1.tweet_id, 2)
        assert original.retweet_count == 2
        assert rt2.retweet_of == original.tweet_id

    def test_retweet_preserves_embedded_url(self, twitter, user):
        original = twitter.post_tweet(
            user.user_id, "see http://cnn.com/a", 0)
        b = twitter.register_user("b", 0)
        rt = twitter.retweet(b.user_id, original.tweet_id, 1)
        assert "http://cnn.com/a" in rt.text

    def test_suspended_cannot_retweet(self, twitter, user):
        original = twitter.post_tweet(user.user_id, "x", 0)
        b = twitter.register_user("b", 0)
        twitter.suspend_user(b.user_id)
        with pytest.raises(TwitterError):
            twitter.retweet(b.user_id, original.tweet_id, 1)


class TestEngagementAndRecrawl:
    def test_like(self, twitter, user):
        tweet = twitter.post_tweet(user.user_id, "x", 0)
        twitter.like(tweet.tweet_id, 3)
        assert tweet.like_count == 3

    def test_fetch_available(self, twitter, user):
        tweet = twitter.post_tweet(user.user_id, "x", 0)
        assert twitter.fetch_tweet(tweet.tweet_id) is tweet

    def test_fetch_deleted_is_none(self, twitter, user):
        tweet = twitter.post_tweet(user.user_id, "x", 0)
        twitter.delete_tweet(tweet.tweet_id)
        assert twitter.fetch_tweet(tweet.tweet_id) is None

    def test_fetch_suspended_author_is_none(self, twitter, user):
        tweet = twitter.post_tweet(user.user_id, "x", 0)
        twitter.suspend_user(user.user_id)
        assert twitter.fetch_tweet(tweet.tweet_id) is None

    def test_fetch_unknown_is_none(self, twitter):
        assert twitter.fetch_tweet("t999") is None


class TestAccounting:
    def test_total_posts_with_ambient(self, twitter, user):
        twitter.post_tweet(user.user_id, "x", 0)
        twitter.record_ambient_posts(1000)
        assert twitter.total_posts == 1001

    def test_negative_ambient_rejected(self, twitter):
        with pytest.raises(ValueError):
            twitter.record_ambient_posts(-1)

    def test_to_post_conversion(self, twitter, user):
        tweet = twitter.post_tweet(user.user_id, "x", 7)
        post = tweet.to_post()
        assert post.platform == "twitter"
        assert post.community == "Twitter"
        assert post.created_at == 7
        assert post.author_id == user.user_id
