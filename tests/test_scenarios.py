"""Scenario registry + K-platform ecosystem tests.

Covers the registry semantics, the ``web-centipede`` bit-identity
golden (the paper preset must be indistinguishable from bare
``Study()``), the ground-truth extension, the generalized corpus
selection rule, and a K=4 ``gab`` world end-to-end: tables, influence
matrices, the HTTP service, and the live engine all adapt to K.
"""

from __future__ import annotations

import dataclasses
import http.client
import json
import threading

import numpy as np
import pytest

from repro.api import Study, StudyService
from repro.api.serialize import influence_payload, scenarios_payload
from repro.config import HAWKES_PROCESSES, HawkesConfig
from repro.core.influence import UrlCascade, select_urls
from repro.live import LiveEngine, RefitPolicy, WindowedHawkesRefitter
from repro.news.domains import NewsCategory
from repro.platforms.registry import PAPER_ECOSYSTEM, make_ecosystem
from repro.scenarios import (
    GAB_SPEC,
    Scenario,
    all_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.synthesis.params import default_ground_truth, extend_ground_truth
from repro.synthesis.world import WorldConfig

ALT = NewsCategory.ALTERNATIVE
MAIN = NewsCategory.MAINSTREAM

FAST = HawkesConfig(gibbs_iterations=12, gibbs_burn_in=4)


# ---------------------------------------------------------------------------
# Registry semantics
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_builtin_presets_registered(self):
        names = scenario_names()
        assert {"minimal", "web-centipede", "gab", "election-week",
                "bot-amplification"} <= set(names)
        assert names == tuple(sorted(names))

    def test_get_by_name_and_id(self):
        by_name = get_scenario("gab")
        assert get_scenario("gab@v1") is by_name
        assert get_scenario(by_name) is by_name  # pass-through
        assert by_name.scenario_id == "gab@v1"
        assert by_name.k == 4

    def test_get_version_mismatch(self):
        with pytest.raises(KeyError, match="gab@v1"):
            get_scenario("gab@v9")

    def test_get_unknown_lists_known(self):
        with pytest.raises(KeyError, match="web-centipede"):
            get_scenario("nope")

    def test_register_refuses_silent_clobber(self):
        existing = get_scenario("minimal")
        different = dataclasses.replace(existing, title="changed")
        with pytest.raises(ValueError, match="replace=True"):
            register_scenario(different)
        # Re-registering the identical scenario is an idempotent no-op.
        assert register_scenario(existing) is existing

    def test_all_scenarios_sorted(self):
        scenarios = all_scenarios()
        assert [s.name for s in scenarios] == sorted(s.name
                                                     for s in scenarios)

    def test_scenarios_payload_shape(self):
        payload = scenarios_payload()
        assert payload["count"] == len(all_scenarios())
        gab = next(s for s in payload["scenarios"] if s["name"] == "gab")
        assert gab["k"] == 4
        assert gab["processes"] == ["Reddit", "/pol/", "Twitter", "Gab"]
        assert gab["id"] == "gab@v1"


# ---------------------------------------------------------------------------
# web-centipede golden: the paper preset is bare Study(), bit for bit
# ---------------------------------------------------------------------------

class TestWebCentipedeGolden:
    def test_preset_pins_study_defaults(self):
        scenario = get_scenario("web-centipede")
        assert scenario.world == WorldConfig()
        assert scenario.hawkes == HawkesConfig()
        assert scenario.method == "gibbs"
        assert scenario.ecosystem is PAPER_ECOSYSTEM
        assert scenario.ecosystem.processes == HAWKES_PROCESSES

    def test_fits_identical_to_bare_study(self, collected):
        base = Study.from_data(collected, hawkes=FAST, method="em",
                               max_urls=10)
        via = Study.from_data(collected, scenario="web-centipede",
                              hawkes=FAST, method="em", max_urls=10)
        assert via.ecosystem is PAPER_ECOSYSTEM
        assert (influence_payload(via.influence())
                == influence_payload(base.influence()))
        assert (base.table(10).to_payload()
                == via.table(10).to_payload())

    def test_scenario_key_isolated_from_legacy_keys(self, collected):
        base = Study.from_data(collected, hawkes=FAST, method="em")
        via = Study.from_data(collected, scenario="web-centipede",
                              hawkes=FAST, method="em")
        # Bare sessions keep their legacy keys (no scenario entry at
        # all), while presets cache under their own key space.
        assert "scenario" not in base._world_params()
        assert via._world_params()["scenario"] == "web-centipede@v1"
        assert base.stage_key("world") != via.stage_key("world")
        assert base.stage_key("fits") != via.stage_key("fits")

    def test_seed_override_replaces_scenario_seed(self):
        study = Study(scenario="minimal", seed=99)
        assert study.world_config.seed == 99
        assert (study.world_config.n_stories_alternative
                == get_scenario("minimal").world.n_stories_alternative)


# ---------------------------------------------------------------------------
# Ground-truth extension
# ---------------------------------------------------------------------------

class TestExtendGroundTruth:
    def test_appends_one_process_per_spec(self):
        base = default_ground_truth()
        k = len(base.processes)
        truth = extend_ground_truth((GAB_SPEC,))
        assert truth.processes == base.processes + ("Gab",)
        assert truth.weights_alternative.shape == (k + 1, k + 1)
        assert truth.weights_mainstream.shape == (k + 1, k + 1)
        assert truth.background_alternative.shape == (k + 1,)
        assert truth.extra_platform_names == ("Gab",)

    def test_coupling_layout(self):
        base = default_ground_truth()
        k = len(base.processes)
        truth = extend_ground_truth((GAB_SPEC,))
        weights = truth.weights_alternative
        assert weights[k, k] == pytest.approx(GAB_SPEC.self_excitation)
        assert weights[k, 0] == pytest.approx(GAB_SPEC.coupling)
        assert weights[0, k] == pytest.approx(GAB_SPEC.incoming_weight)
        np.testing.assert_allclose(weights[:k, :k],
                                   base.weights_alternative)
        assert truth.background_alternative[k] == pytest.approx(
            GAB_SPEC.background_alternative)
        assert truth.background_mainstream[k] == pytest.approx(
            GAB_SPEC.background_mainstream)

    def test_duplicate_process_rejected(self):
        twin = dataclasses.replace(GAB_SPEC, key="gab2")
        with pytest.raises(ValueError):
            extend_ground_truth((GAB_SPEC, twin))


# ---------------------------------------------------------------------------
# Generalized corpus selection rule
# ---------------------------------------------------------------------------

def _cascade(url, *processes):
    return UrlCascade(url=url, category=ALT,
                      events=tuple((float(i), p)
                                   for i, p in enumerate(processes)))


class TestSelectUrlsRule:
    PROCESSES = ("Reddit", "/pol/", "Twitter", "Gab")

    def select(self, cascades, **kwargs):
        return select_urls(cascades, processes=self.PROCESSES,
                           require_all=("Twitter", "/pol/"),
                           **kwargs)

    def test_require_any_over_extras(self):
        qualifying = _cascade("a", "Twitter", "/pol/", "Gab")
        missing_any = _cascade("b", "Twitter", "/pol/")
        missing_all = _cascade("c", "Twitter", "Gab")
        kept = self.select([qualifying, missing_any, missing_all],
                           require_any=("Reddit", "Gab"))
        assert [c.url for c in kept] == ["a"]

    def test_empty_require_any_disables_clause(self):
        pair_only = _cascade("b", "Twitter", "/pol/")
        kept = self.select([pair_only], require_any=())
        assert [c.url for c in kept] == ["b"]

    def test_defaults_reproduce_paper_rule(self, cascades):
        legacy = select_urls(cascades)
        eco = PAPER_ECOSYSTEM
        general = select_urls(cascades, processes=eco.processes,
                              require_all=eco.require_all,
                              require_any=eco.require_any)
        assert [c.url for c in legacy] == [c.url for c in general]


# ---------------------------------------------------------------------------
# gab end-to-end: K=4 tables, influence, service, live
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def gab_scenario():
    scenario = get_scenario("gab")
    world = dataclasses.replace(
        scenario.world,
        n_stories_alternative=150, n_stories_mainstream=450,
        n_twitter_users=250, n_reddit_users=200, n_generic_subreddits=30)
    return dataclasses.replace(scenario, world=world)


@pytest.fixture(scope="module")
def gab_study(gab_scenario):
    return Study(scenario=gab_scenario, hawkes=FAST, max_urls=12)


class TestGabEndToEnd:
    def test_world_materializes_gab_posts(self, gab_study):
        world = gab_study.world
        assert "gab" in world.extras
        assert len(world.extras["gab"].posts) > 0
        assert world.extras["gab"].ambient_posts > 0
        data = gab_study.data
        assert "gab" in data.extras
        assert len(data.extras["gab"]) == len(world.extras["gab"].posts)

    def test_tables_grow_a_gab_row(self, gab_study):
        t1 = gab_study.table(1)
        assert "Gab" in {row[0] for row in t1.rows}
        t2 = gab_study.table(2)
        assert "Gab" in {row[0] for row in t2.rows}
        t8 = gab_study.table(8)
        assert any(row[0] == "Gab vs Twitter" for row in t8.rows)

    def test_sequence_tables_adapt_to_four_slices(self, gab_study):
        t10 = gab_study.table(10)
        # Full orderings now need all four slices, so every sequence
        # spells out four hops; Gab has no single-letter paper code and
        # renders by name.
        for row in t10.rows:
            assert row[0].count("→") == 3
        t9 = gab_study.table(9)
        assert any("Gab" in row[0] for row in t9.rows)

    def test_influence_is_4x4(self, gab_study):
        result = gab_study.influence()
        assert result.processes == ("Reddit", "/pol/", "Twitter", "Gab")
        stack = result.weight_stack(ALT)
        assert stack.shape[1:] == (4, 4)
        payload = influence_payload(result)
        assert len(payload["processes"]) == 4
        means = payload["categories"]["alternative"]["mean_weights"]
        assert len(means) == 4 and len(means[0]) == 4

    def test_report_renders_four_process_section(self, gab_study):
        report = gab_study.report()
        assert "Gab" in report
        assert "/16 weight cells differ" in report
        assert "W(Twitter→Twitter)" in report

    def test_corpus_uses_merged_rule(self, gab_study):
        for cascade in gab_study.corpus:
            present = {process for _, process in cascade.events}
            assert {"Twitter", "/pol/"} <= present
            assert present & {"Reddit", "Gab"}


class TestGabService:
    @pytest.fixture(scope="class")
    def service(self, gab_study):
        service = StudyService(gab_study, port=0)
        thread = threading.Thread(target=service.serve_forever, daemon=True)
        thread.start()
        yield service
        service.shutdown()
        service.close()
        thread.join(timeout=5)

    def _get(self, service, path):
        conn = http.client.HTTPConnection("127.0.0.1", service.port,
                                          timeout=30)
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def test_scenarios_endpoint(self, service):
        status, body = self._get(service, "/scenarios")
        assert status == 200
        payload = json.loads(body)
        assert payload["count"] == len(all_scenarios())
        assert any(s["name"] == "gab" for s in payload["scenarios"])

    def test_influence_serves_four_processes(self, service):
        status, body = self._get(service, "/influence")
        assert status == 200
        payload = json.loads(body)
        assert payload["processes"] == ["Reddit", "/pol/", "Twitter", "Gab"]

    def test_gab_is_a_valid_filter(self, service):
        status, body = self._get(service, "/influence?source=Gab")
        assert status == 200
        cells = json.loads(body)["cells"]
        assert cells and all(c["source"] == "Gab" for c in cells)

    def test_paper_only_process_rejected(self, service):
        # The_Donald is a process of the paper's 8-axis ecosystem, not
        # of gab's merged 4-axis one: the filter validates against the
        # study's ecosystem, so it is a 400 here.
        status, _ = self._get(service, "/influence?source=The_Donald")
        assert status == 400


class TestGabLive:
    @pytest.fixture(scope="class")
    def engine(self, gab_study, gab_scenario):
        engine = LiveEngine(ecosystem=gab_scenario.ecosystem)
        for record in gab_study.data.merged().records:
            engine.process(record)
        return engine

    def test_aggregators_carry_gab_slice(self, engine, gab_study):
        assert "Gab" in engine.domains.counters
        top = engine.domains.top_domains("Gab", ALT, 5)
        assert top  # Gab is alternative-leaning: its slice has domains

    def test_live_first_hops_equal_batch(self, engine, gab_study):
        from repro.analysis import sequences
        slices = gab_study.data.sequence_slices()
        assert "Gab" in slices
        for category in (ALT, MAIN):
            batch = sequences.first_hop_distribution(slices, category)
            assert engine.first_hops.first_hop(category) == batch
            batch_triples = sequences.triplet_distribution(slices, category)
            assert engine.first_hops.triplets(category) == batch_triples

    def test_assembler_routes_through_process_of(self, engine, gab_study):
        cascades = engine.cascades.cascades()
        seen = {process for cascade in cascades
                for _, process in cascade.events}
        assert seen == {"Reddit", "/pol/", "Twitter", "Gab"}
        batch = {c.url: c.events for c in gab_study.cascades}
        live = {c.url: c.events for c in cascades}
        assert live == batch

    def test_windowed_refit_is_4x4(self, engine, gab_scenario):
        refitter = WindowedHawkesRefitter(
            policy=RefitPolicy(max_urls=8, method="em",
                               window_seconds=1e10),
            config=FAST,
            ecosystem=gab_scenario.ecosystem)
        now = engine.stream_time + refitter.policy.quiet_seconds + 1
        result = refitter.refit(engine.cascades, now)
        assert result is not None
        assert result.processes == ("Reddit", "/pol/", "Twitter", "Gab")
        assert result.fits[0].weights.shape == (4, 4)

    def test_engine_hands_ecosystem_to_refitter(self, gab_scenario):
        refitter = WindowedHawkesRefitter(config=FAST)
        engine = LiveEngine(refitter=refitter,
                            ecosystem=gab_scenario.ecosystem)
        assert refitter.ecosystem is gab_scenario.ecosystem
        assert engine.cascades.processes == frozenset(
            gab_scenario.ecosystem.processes)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestScenariosCli:
    def test_list_json_smoke(self, capsys):
        from repro.cli import main
        assert main(["scenarios", "list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == json.loads(json.dumps(scenarios_payload()))

    def test_list_plain(self, capsys):
        from repro.cli import main
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "gab@v1" in out and "K=4" in out
        assert "web-centipede@v1" in out

    def test_unknown_scenario_fails_cleanly(self, capsys):
        from repro.cli import main
        assert main(["scenarios", "run", "nope"]) == 1
        assert "unknown scenario" in capsys.readouterr().err
