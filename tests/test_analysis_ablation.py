"""Tests for the ablation sweep machinery."""

import numpy as np
import pytest

from repro.analysis.ablation import (
    EstimatorComparison,
    estimator_agreement,
    sweep_bin_size,
    sweep_gap_trim,
    sweep_max_lag,
    weight_stability,
)
from repro.config import HawkesConfig
from repro.core.influence import UrlCascade
from repro.news.domains import NewsCategory
from repro.timeutil import Interval

ALT = NewsCategory.ALTERNATIVE
MAIN = NewsCategory.MAINSTREAM

FAST = HawkesConfig(gibbs_iterations=15, gibbs_burn_in=5)


def make_corpus(n=6, bursts=10):
    """Cascades with repeated bursts so estimators see real structure:
    each burst is Twitter -> Twitter -> /pol/ -> The_Donald."""
    cascades = []
    for i in range(n):
        t0 = float(i) * 1e7
        category = ALT if i % 2 else MAIN
        events = []
        for b in range(bursts):
            tb = t0 + b * 7200.0
            events.extend([(tb, "Twitter"), (tb + 120, "Twitter"),
                           (tb + 300, "/pol/"),
                           (tb + 600, "The_Donald")])
        events.append((t0 + bursts * 7200.0, "politics"))
        cascades.append(UrlCascade(url=f"u{i}", category=category,
                                   events=tuple(events)))
    return cascades


class TestSweeps:
    def test_bin_size_sweep(self):
        points = sweep_bin_size(make_corpus(), FAST,
                                bin_seconds=(60, 300), seed=1)
        assert [p.label for p in points] == ["dt=60s", "dt=300s"]
        for point in points:
            assert point.n_urls == 6
            assert point.mean_weight_alt.shape == (8, 8)

    def test_max_lag_sweep(self):
        points = sweep_max_lag(make_corpus(), FAST, lag_hours=(6, 12),
                               seed=1)
        assert [p.label for p in points] == ["lag=6h", "lag=12h"]
        # results should be in the same ballpark across windows
        assert weight_stability(points) < 0.9

    def test_gap_trim_sweep(self):
        gaps = [Interval(0, 10**9)]  # everything overlaps
        points = sweep_gap_trim(make_corpus(), gaps, FAST,
                                fractions=(0.0, 0.5), seed=1)
        assert points[0].n_urls == 6
        assert points[1].n_urls == 3

    def test_twitter_self_excitation_accessor(self):
        points = sweep_bin_size(make_corpus(), FAST, bin_seconds=(60,),
                                seed=1)
        alt, main = points[0].twitter_self_excitation()
        assert alt > 0
        assert main > 0

    def test_weight_stability_degenerate(self):
        assert weight_stability([]) == 0.0


class TestEstimatorAgreement:
    @pytest.fixture(scope="class")
    def comparison(self):
        return estimator_agreement(make_corpus(), FAST, seed=2)

    def test_shapes(self, comparison):
        assert comparison.gibbs.shape == (6, 8, 8)
        assert comparison.em.shape == (6, 8, 8)
        assert comparison.continuous.shape == (6, 8, 8)

    def test_gibbs_em_agree(self, comparison):
        # The structural signal (which cells are large) must agree; a
        # baseline offset remains because Gibbs reports the posterior
        # mean (prior-shrunk > 0) while EM reports the MAP mode (0 for
        # cells with no attributed events).
        assert comparison.correlation("gibbs", "em") > 0.5
        assert comparison.mean_absolute_difference("gibbs", "em") < 0.08

    def test_continuous_nonnegative(self, comparison):
        assert np.all(comparison.continuous >= 0)

    def test_correlation_handles_constant(self):
        flat = EstimatorComparison(
            gibbs=np.zeros((2, 8, 8)),
            em=np.zeros((2, 8, 8)),
            continuous=np.zeros((2, 8, 8)))
        assert flat.correlation("gibbs", "em") == 0.0
