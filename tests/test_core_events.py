"""Tests for sparse discrete event sequences and binning."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.events import DiscreteEvents, bin_timestamps


def make_events(pairs, n_bins=100, n_processes=3):
    return DiscreteEvents.from_pairs(pairs, n_bins=n_bins,
                                     n_processes=n_processes)


class TestDiscreteEvents:
    def test_from_pairs_counts_duplicates(self):
        events = make_events([(5, 0), (5, 0), (7, 1)])
        assert events.total_events == 3
        assert len(events) == 2  # two occupied (bin, process) cells

    def test_bins_sorted(self):
        events = make_events([(9, 0), (2, 1), (5, 2)])
        assert list(events.bins) == [2, 5, 9]

    def test_events_per_process(self):
        events = make_events([(1, 0), (2, 0), (3, 2)])
        assert list(events.events_per_process()) == [2, 0, 1]

    def test_dense_round_trip(self):
        events = make_events([(1, 0), (1, 2), (50, 1), (50, 1)])
        dense = events.to_dense()
        assert dense.shape == (100, 3)
        assert dense.sum() == 4
        back = DiscreteEvents.from_dense(dense)
        assert back.total_events == events.total_events
        assert list(back.bins) == list(events.bins)

    def test_empty(self):
        events = make_events([])
        assert events.total_events == 0
        assert events.to_dense().sum() == 0

    def test_out_of_range_bin_rejected(self):
        with pytest.raises(ValueError):
            make_events([(100, 0)], n_bins=100)

    def test_out_of_range_process_rejected(self):
        with pytest.raises(ValueError):
            make_events([(0, 3)], n_processes=3)

    def test_unsorted_bins_rejected(self):
        with pytest.raises(ValueError):
            DiscreteEvents(
                bins=np.array([5, 2]),
                processes=np.array([0, 0]),
                counts=np.array([1, 1]),
                n_bins=10, n_processes=1)

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            DiscreteEvents(
                bins=np.array([1]),
                processes=np.array([0]),
                counts=np.array([0]),
                n_bins=10, n_processes=1)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            DiscreteEvents(
                bins=np.array([1, 2]),
                processes=np.array([0]),
                counts=np.array([1]),
                n_bins=10, n_processes=1)


class TestBinTimestamps:
    def test_origin_defaults_to_first_event(self):
        events = bin_timestamps([1000.0, 1060.0, 1120.0], [0, 1, 0],
                                n_processes=2, delta_t=60)
        assert list(events.bins) == [0, 1, 2]
        assert events.n_bins == 3

    def test_same_minute_same_bin(self):
        events = bin_timestamps([0.0, 30.0, 59.9], [0, 0, 0],
                                n_processes=1, delta_t=60)
        assert len(events) == 1
        assert events.counts[0] == 3

    def test_explicit_origin(self):
        events = bin_timestamps([120.0], [0], n_processes=1, delta_t=60,
                                origin=0.0)
        assert list(events.bins) == [2]

    def test_timestamp_before_origin_rejected(self):
        with pytest.raises(ValueError):
            bin_timestamps([10.0], [0], n_processes=1, origin=100.0)

    def test_empty_input(self):
        events = bin_timestamps([], [], n_processes=4)
        assert events.total_events == 0
        assert events.n_processes == 4

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bin_timestamps([1.0, 2.0], [0], n_processes=1)

    def test_delta_t_scaling(self):
        stamps = [0.0, 100.0, 200.0]
        coarse = bin_timestamps(stamps, [0] * 3, n_processes=1, delta_t=300)
        fine = bin_timestamps(stamps, [0] * 3, n_processes=1, delta_t=50)
        assert coarse.n_bins == 1
        assert fine.n_bins == 5


@given(st.lists(st.tuples(st.floats(0, 10_000), st.integers(0, 4)),
                min_size=1, max_size=60))
def test_binning_conserves_events(pairs):
    stamps = [t for t, _ in pairs]
    procs = [k for _, k in pairs]
    events = bin_timestamps(stamps, procs, n_processes=5, delta_t=60)
    assert events.total_events == len(pairs)
    per_proc = events.events_per_process()
    for k in range(5):
        assert per_proc[k] == sum(1 for p in procs if p == k)


@given(st.lists(st.tuples(st.integers(0, 99), st.integers(0, 2)),
                max_size=40))
def test_dense_sparse_round_trip(pairs):
    events = DiscreteEvents.from_pairs(pairs, n_bins=100, n_processes=3)
    back = DiscreteEvents.from_dense(events.to_dense())
    assert np.array_equal(back.bins, events.bins)
    assert np.array_equal(back.processes, events.processes)
    assert np.array_equal(back.counts, events.counts)
