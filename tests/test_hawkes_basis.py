"""Tests for lag-PMF bases."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.hawkes.basis import DirichletLagBasis, LagBasis, LogBinnedLagBasis


class TestDirichletBasis:
    def test_buckets_equal_lags(self):
        basis = DirichletLagBasis(10)
        assert basis.n_buckets == 10
        assert basis.max_lag == 10

    def test_expand_is_identity(self):
        basis = DirichletLagBasis(5)
        pmf = np.array([0.5, 0.2, 0.1, 0.1, 0.1])
        assert np.allclose(basis.expand(pmf), pmf)

    def test_contract_is_identity(self):
        basis = DirichletLagBasis(5)
        pmf = np.array([0.5, 0.2, 0.1, 0.1, 0.1])
        assert np.allclose(basis.contract(pmf), pmf)


class TestLogBinnedBasis:
    def test_covers_all_lags(self):
        basis = LogBinnedLagBasis(720, n_buckets=12)
        assert basis.max_lag == 720
        assert basis.bucket_sizes.sum() == 720
        assert len(basis.bucket_of) == 720

    def test_bucket_of_monotone(self):
        basis = LogBinnedLagBasis(720, n_buckets=12)
        assert np.all(np.diff(basis.bucket_of) >= 0)

    def test_early_lags_fine_resolution(self):
        basis = LogBinnedLagBasis(720, n_buckets=12)
        # first bucket covers only lag 1
        assert basis.bucket_sizes[0] <= 2
        # last bucket is much coarser
        assert basis.bucket_sizes[-1] > 50

    def test_expand_sums_to_one(self):
        basis = LogBinnedLagBasis(720, n_buckets=12)
        bucket_pmf = np.full(basis.n_buckets, 1.0 / basis.n_buckets)
        per_lag = basis.expand(bucket_pmf)
        assert per_lag.shape == (720,)
        assert abs(per_lag.sum() - 1.0) < 1e-9

    def test_expand_uniform_within_bucket(self):
        basis = LogBinnedLagBasis(100, n_buckets=5)
        bucket_pmf = np.zeros(basis.n_buckets)
        bucket_pmf[-1] = 1.0
        per_lag = basis.expand(bucket_pmf)
        inside = per_lag[basis.bucket_of == basis.n_buckets - 1]
        assert np.allclose(inside, inside[0])
        assert np.all(per_lag[basis.bucket_of != basis.n_buckets - 1] == 0)

    def test_contract_inverts_expand_on_buckets(self):
        basis = LogBinnedLagBasis(200, n_buckets=8)
        bucket_pmf = np.random.default_rng(0).dirichlet(
            np.ones(basis.n_buckets))
        recovered = basis.contract(basis.expand(bucket_pmf))
        assert np.allclose(recovered, bucket_pmf)

    def test_expand_batched(self):
        basis = LogBinnedLagBasis(50, n_buckets=4)
        batch = np.random.default_rng(1).dirichlet(
            np.ones(basis.n_buckets), size=(3, 2))
        per_lag = basis.expand(batch)
        assert per_lag.shape == (3, 2, 50)
        assert np.allclose(per_lag.sum(axis=-1), 1.0)

    def test_more_buckets_than_lags_degrades_gracefully(self):
        basis = LogBinnedLagBasis(5, n_buckets=100)
        assert basis.n_buckets == 5

    def test_single_bucket(self):
        basis = LogBinnedLagBasis(10, n_buckets=1)
        assert basis.n_buckets == 1
        assert np.allclose(basis.expand(np.array([1.0])), 0.1)

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            LogBinnedLagBasis(10, n_buckets=0)

    def test_wrong_pmf_size_rejected(self):
        basis = LogBinnedLagBasis(100, n_buckets=5)
        with pytest.raises(ValueError):
            basis.expand(np.ones(7))
        with pytest.raises(ValueError):
            basis.contract(np.ones(7))


class TestLagBasisValidation:
    def test_mismatched_bucket_of_rejected(self):
        with pytest.raises(ValueError):
            LagBasis(max_lag=10, bucket_of=np.zeros(5, dtype=np.int64),
                     bucket_sizes=np.array([10]))

    def test_wrong_sizes_sum_rejected(self):
        with pytest.raises(ValueError):
            LagBasis(max_lag=10, bucket_of=np.zeros(10, dtype=np.int64),
                     bucket_sizes=np.array([5]))


@given(max_lag=st.integers(2, 500), n_buckets=st.integers(1, 30))
def test_log_basis_partition_property(max_lag, n_buckets):
    basis = LogBinnedLagBasis(max_lag, n_buckets)
    assert basis.bucket_sizes.sum() == max_lag
    assert basis.bucket_of[0] == 0
    assert basis.bucket_of[-1] == basis.n_buckets - 1
    # expand of any dirichlet stays a PMF
    pmf = np.full(basis.n_buckets, 1.0 / basis.n_buckets)
    assert abs(basis.expand(pmf).sum() - 1.0) < 1e-9
