"""Live engine vs batch pipeline: the acceptance-criteria equivalence.

The engine consumes the same record stream the batch collectors
produce; after draining it, every live view must equal the batch
analysis output exactly — domain fractions, top-domain tables, URL
appearance ECDFs, first-hop/triplet tables, and the assembled Hawkes
cascades.
"""

import numpy as np
import pytest

from repro import cli
from repro.analysis import characterization as chz
from repro.analysis import sequences
from repro.config import SEQUENCE_PLATFORMS
from repro.core.influence import select_urls
from repro.live import (
    EventBus,
    LiveEngine,
    RefitPolicy,
    WindowedHawkesRefitter,
)
from repro.news.domains import NewsCategory
from repro.pipeline import influence_cascades, stream_sources


@pytest.fixture(scope="module")
def live_engine(small_world):
    engine = LiveEngine(EventBus(stream_sources(small_world)),
                        summary_every=0)
    engine.run()
    return engine


def test_streams_every_collected_record(live_engine, collected):
    batch_total = (len(collected.twitter) + len(collected.reddit)
                   + len(collected.fourchan))
    assert live_engine.records_seen == batch_total
    assert live_engine.by_source["twitter"] == len(collected.twitter)
    assert live_engine.by_source["reddit"] == len(collected.reddit)
    assert live_engine.by_source["4chan"] == len(collected.fourchan)


@pytest.mark.parametrize("category", list(NewsCategory))
def test_domain_fractions_match_batch(live_engine, collected, category):
    slices = collected.sequence_slices()
    assert (live_engine.domains.platform_fractions(category)
            == chz.domain_platform_fractions(slices, category))
    for name, dataset in slices.items():
        assert (live_engine.domains.top_domains(name, category)
                == chz.top_domains(dataset, category))


@pytest.mark.parametrize("category", list(NewsCategory))
def test_url_appearances_match_batch(live_engine, collected, category):
    for name, dataset in collected.sequence_slices().items():
        batch = chz.url_appearance_cdf(dataset, category)
        live = live_engine.appearances.appearance_cdf(name, category)
        if batch is None:
            assert live is None
        else:
            assert np.array_equal(batch.values, live.values)


@pytest.mark.parametrize("category", list(NewsCategory))
def test_first_hops_match_batch(live_engine, collected, category):
    slices = collected.sequence_slices()
    assert (live_engine.first_hops.first_hop(category)
            == sequences.first_hop_distribution(slices, category))
    assert (live_engine.first_hops.triplets(category)
            == sequences.triplet_distribution(slices, category))


def test_cascades_match_batch(live_engine, collected):
    batch = {c.url: c for c in influence_cascades(collected)}
    live = {c.url: c for c in live_engine.cascades.cascades()}
    assert batch == live


def test_refitter_runs_on_stream(small_world):
    refitter = WindowedHawkesRefitter(
        policy=RefitPolicy(every_records=400, max_urls=4, method="em"),
        seed=3)
    engine = LiveEngine(EventBus(stream_sources(small_world)),
                        refitter=refitter, summary_every=0)
    engine.run(limit=1200)
    assert refitter.n_refits >= 1 or refitter.last_corpus_size == 0
    if refitter.last_result is not None:
        k = len(refitter.last_result.processes)
        for fit in refitter.last_result.fits:
            assert fit.weights.shape == (k, k)
            assert np.all(fit.weights >= 0)


def test_refit_window_selects_settled_cascades(live_engine):
    assembler = live_engine.cascades
    last = max(c.last_time for c in assembler.cascades())
    window = assembler.cascades_between(0.0, last - 1.0)
    assert all(c.last_time <= last - 1.0 for c in window)
    eligible = select_urls(window)
    for cascade in eligible:
        present = cascade.processes_present()
        assert "Twitter" in present and "/pol/" in present


def test_cli_live_smoke(tmp_path, capsys):
    """`python -m repro live --seed 7` streams end-to-end."""
    checkpoint = tmp_path / "ckpt.json"
    rc = cli.main([
        "live", "--seed", "7",
        "--stories-alt", "40", "--stories-main", "100",
        "--twitter-users", "60", "--reddit-users", "50",
        "--summary-every", "500", "--skip-refit",
        "--checkpoint", str(checkpoint)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "records" in out
    assert "First-hop sequences" in out
    assert checkpoint.exists()

    # resuming from the checkpoint restores the stream position and
    # does NOT re-count the already-processed records
    from repro.live import load_checkpoint
    first = load_checkpoint(checkpoint)
    rc = cli.main([
        "live", "--seed", "7",
        "--stories-alt", "40", "--stories-main", "100",
        "--twitter-users", "60", "--reddit-users", "50",
        "--skip-refit", "--resume",
        "--checkpoint", str(checkpoint)])
    assert rc == 0
    assert "resumed at" in capsys.readouterr().out
    second = load_checkpoint(checkpoint)
    assert second == first  # identical stream replay adds nothing


class TestCheckpointStrictness:
    """Checkpoints are strict JSON: non-finite state fails at write time."""

    def test_clean_state_round_trips(self, tmp_path):
        from repro.live import load_checkpoint, save_checkpoint
        state = {"records_seen": 42, "rates": [0.5, 1.25], "label": "ok"}
        path = save_checkpoint(tmp_path / "ckpt.json", state)
        assert load_checkpoint(path) == state

    def test_poisoned_state_raises_and_leaves_no_file(self, tmp_path):
        from repro.live import save_checkpoint
        target = tmp_path / "ckpt.json"
        poisoned = {"records_seen": 1, "rates": [0.5, float("nan")]}
        with pytest.raises(ValueError):
            save_checkpoint(target, poisoned)
        # Neither the checkpoint nor the temp file may survive.
        assert list(tmp_path.iterdir()) == []

    def test_poisoned_state_never_clobbers_previous_checkpoint(
            self, tmp_path):
        from repro.live import load_checkpoint, save_checkpoint
        target = tmp_path / "ckpt.json"
        good = {"records_seen": 7}
        save_checkpoint(target, good)
        with pytest.raises(ValueError):
            save_checkpoint(target, {"records_seen": float("inf")})
        assert load_checkpoint(target) == good


def test_incremental_runs_drop_no_records(collected):
    """Repeated run(limit=N) drains the bus without losing merge state."""
    from repro.live import dataset_source

    full = collected.merged()
    chunked = LiveEngine(EventBus([
        ("twitter", dataset_source(collected.twitter)),
        ("reddit", dataset_source(collected.reddit)),
        ("4chan", dataset_source(collected.fourchan))]),
        summary_every=0)
    while chunked.run(limit=997):
        pass
    assert chunked.records_seen == len(full)
    straight = LiveEngine(EventBus([("replay", dataset_source(full))]),
                          summary_every=0)
    straight.run()
    assert (chunked.first_hops.state_dict()
            == straight.first_hops.state_dict())
    assert chunked.domains.state_dict() == straight.domains.state_dict()


def test_resumed_run_skips_already_seen_records(small_world, tmp_path):
    """restore() + run() over the same stream equals one straight run."""
    straight = LiveEngine(EventBus(stream_sources(small_world)),
                          summary_every=0)
    straight.run()

    path = tmp_path / "ck.json"
    partial = LiveEngine(EventBus(stream_sources(small_world)),
                         checkpoint_path=path, summary_every=0)
    partial.run(limit=700)

    resumed = LiveEngine(EventBus(stream_sources(small_world)),
                         summary_every=0)
    resumed.restore(path)
    assert resumed.records_seen == 700
    resumed.run()
    assert resumed.records_seen == straight.records_seen
    assert resumed.state_dict() == straight.state_dict()


def test_checkpoint_restore_mid_refit_window(small_world, tmp_path):
    """Restoring between refit windows resumes refits deterministically.

    The refitter's RNG is keyed by ``seed + n_refits`` and its window
    position by ``records_at_last_refit`` — both checkpointed — so an
    interrupted run's remaining refits replay bit-identically.
    """
    def make_engine(path=None):
        refitter = WindowedHawkesRefitter(
            policy=RefitPolicy(every_records=500, max_urls=4,
                               method="em"),
            seed=3)
        return LiveEngine(EventBus(stream_sources(small_world)),
                          refitter=refitter, checkpoint_path=path,
                          summary_every=0)

    straight = make_engine()
    straight.run()
    assert straight.refitter.n_refits >= 2

    path = tmp_path / "ck.json"
    partial = make_engine(path)
    partial.run(limit=700)  # inside the second refit window
    assert partial.refitter.n_refits == 1
    assert 0 < partial.refitter.records_at_last_refit <= 700

    resumed = make_engine()
    resumed.restore(path)
    assert resumed.refitter.n_refits == 1
    resumed.run()
    assert resumed.records_seen == straight.records_seen
    assert resumed.refitter.n_refits == straight.refitter.n_refits
    assert resumed.state_dict() == straight.state_dict()
    a = straight.refitter.last_result
    b = resumed.refitter.last_result
    assert (a is None) == (b is None)
    if a is not None:
        assert len(a.fits) == len(b.fits)
        for fit_a, fit_b in zip(a.fits, b.fits):
            assert fit_a.url == fit_b.url
            assert np.array_equal(fit_a.weights, fit_b.weights)


def test_rolling_summary_format(live_engine):
    summary = live_engine.summary()
    line = summary.format()
    assert f"{summary.records:8d} records" in line
    assert summary.distinct_urls == live_engine.appearances.distinct_urls()
    for name in ("twitter", "reddit", "4chan"):
        assert name in line
    assert set(summary.by_source) == {"twitter", "reddit", "4chan"}


def test_slice_router_matches_batch_slicing(collected):
    """sequence_slice_of routes records exactly like CollectedData."""
    slices = collected.sequence_slices()
    for name, dataset in slices.items():
        for record in dataset:
            assert chz.sequence_slice_of(record) == name
    for record in collected.reddit_other:
        assert chz.sequence_slice_of(record) is None
    for record in collected.fourchan_other:
        assert chz.sequence_slice_of(record) is None
