"""Tests for Section 3 characterization analyses (Tables 1-7, Figs 1-3)."""

import pytest

from repro.analysis import characterization as chz
from repro.collection.store import Dataset, DatasetRecord, UrlOccurrence
from repro.news.domains import NewsCategory

ALT = NewsCategory.ALTERNATIVE
MAIN = NewsCategory.MAINSTREAM


def rec(post_id, community, author, t, urls, platform="reddit"):
    return DatasetRecord(post_id=post_id, platform=platform,
                         community=community, author_id=author,
                         created_at=t, urls=tuple(urls))


def alt_url(i):
    return UrlOccurrence(f"http://breitbart.com/a{i}", "breitbart.com", ALT)


def main_url(i, domain="cnn.com"):
    return UrlOccurrence(f"http://{domain}/m{i}", domain, MAIN)


@pytest.fixture()
def reddit_ds():
    return Dataset([
        rec("p1", "politics", "u1", 100, [main_url(1)]),
        rec("p2", "politics", "u1", 200, [alt_url(1)]),
        rec("p3", "The_Donald", "u2", 300, [alt_url(1), alt_url(2)]),
        rec("p4", "news", "u3", 400, [main_url(2, "nytimes.com")]),
        rec("p5", "sub_0001", "u4", 500, [main_url(3)]),
        rec("p6", "AutoNewspaper", "bot", 600, [main_url(4)]),
    ])


class TestTable1:
    def test_shares(self, reddit_ds):
        rows = chz.total_post_shares({"reddit": 1000},
                                     {"reddit": reddit_ds})
        row = rows[0]
        assert row.total_posts == 1000
        assert row.pct_alternative == pytest.approx(0.2)  # 2 posts / 1000
        assert row.pct_mainstream == pytest.approx(0.4)

    def test_zero_total(self):
        rows = chz.total_post_shares({"x": 0}, {"x": Dataset()})
        assert rows[0].pct_alternative == 0.0


class TestTable2:
    def test_overview(self, reddit_ds):
        rows = chz.dataset_overview({"Reddit": reddit_ds})
        row = rows[0]
        assert row.posts_with_urls == 6
        assert row.unique_alternative == 2
        assert row.unique_mainstream == 4


class TestTables4to7:
    def test_top_subreddits_excludes_automated(self, reddit_ds):
        ranked = chz.top_subreddits(reddit_ds, MAIN)
        names = [row.name for row in ranked]
        assert "AutoNewspaper" not in names
        assert "politics" in names

    def test_top_subreddits_counts_occurrences(self, reddit_ds):
        ranked = chz.top_subreddits(reddit_ds, ALT)
        top = ranked[0]
        assert top.name == "The_Donald"
        assert top.count == 2
        assert top.percentage == pytest.approx(100 * 2 / 3)

    def test_top_domains(self, reddit_ds):
        ranked = chz.top_domains(reddit_ds, MAIN)
        assert ranked[0].name == "cnn.com"
        assert ranked[0].count == 3
        total_pct = sum(row.percentage for row in ranked)
        assert total_pct == pytest.approx(100.0)

    def test_top_n_truncation(self, reddit_ds):
        ranked = chz.top_domains(reddit_ds, MAIN, top_n=1)
        assert len(ranked) == 1

    def test_coverage(self, reddit_ds):
        assert chz.top_domain_coverage(reddit_ds, MAIN, top_n=20) == \
            pytest.approx(100.0)
        assert chz.top_domain_coverage(reddit_ds, MAIN, top_n=1) == \
            pytest.approx(75.0)


class TestSlices:
    def test_six_subreddits(self, reddit_ds):
        six = chz.slice_six_subreddits(reddit_ds)
        assert {r.community for r in six} <= {
            "The_Donald", "worldnews", "politics", "news", "conspiracy",
            "AskReddit"}
        assert len(six) == 4

    def test_other_subreddits(self, reddit_ds):
        other = chz.slice_other_subreddits(reddit_ds)
        assert {r.community for r in other} == {"sub_0001", "AutoNewspaper"}

    def test_board_slices(self):
        ds = Dataset([
            rec("c1", "/pol/", None, 1, [alt_url(1)], platform="4chan"),
            rec("c2", "/sp/", None, 2, [main_url(1)], platform="4chan"),
        ])
        assert len(chz.slice_board(ds, "/pol/")) == 1
        assert len(chz.slice_other_boards(ds, "/pol/")) == 1


class TestFig1:
    def test_appearance_counts(self, reddit_ds):
        ecdf = chz.url_appearance_cdf(reddit_ds, ALT)
        # alt1 appears twice, alt2 once
        assert ecdf.n == 2
        assert ecdf(1) == pytest.approx(0.5)
        assert ecdf(2) == pytest.approx(1.0)

    def test_empty_slice_returns_none(self):
        assert chz.url_appearance_cdf(Dataset(), ALT) is None


class TestFig2:
    def test_platform_fractions(self, reddit_ds):
        twitter_ds = Dataset([
            rec("t1", "Twitter", "v1", 100, [alt_url(1)],
                platform="twitter"),
        ])
        rows = chz.domain_platform_fractions(
            {"Reddit": reddit_ds, "Twitter": twitter_ds}, ALT)
        assert rows[0].domain == "breitbart.com"
        assert rows[0].total == 4
        assert rows[0].fractions["Reddit"] == pytest.approx(0.75)
        assert rows[0].fractions["Twitter"] == pytest.approx(0.25)

    def test_fractions_sum_to_one(self, reddit_ds):
        rows = chz.domain_platform_fractions({"Reddit": reddit_ds}, MAIN)
        for row in rows:
            assert sum(row.fractions.values()) == pytest.approx(1.0)


class TestFig3:
    def test_user_fractions(self, reddit_ds):
        result = chz.user_alternative_fraction(reddit_ds)
        # u1 mixed (0.5), u2 alt-only (1.0), u3 main-only, u4 main-only,
        # bot main-only
        assert result.n_users == 5
        assert result.pct_alternative_only == pytest.approx(20.0)
        assert result.pct_mainstream_only == pytest.approx(60.0)
        assert result.mixed_users.n == 1
        assert result.mixed_users.values[0] == pytest.approx(0.5)

    def test_anonymous_records_ignored(self):
        ds = Dataset([rec("c1", "/pol/", None, 1, [alt_url(1)],
                          platform="4chan")])
        result = chz.user_alternative_fraction(ds)
        assert result.n_users == 0
        assert result.all_users is None
