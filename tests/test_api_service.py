"""HTTP query-service tests: routing, ETag/304, concurrency, live view."""

import http.client
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import (
    LIVE_INFLUENCE_REF,
    Study,
    StudyService,
    experiments_payload,
    influence_payload,
    payload_key,
)
from repro.config import HAWKES_PROCESSES, HawkesConfig
from repro.live import LiveEngine


@pytest.fixture(scope="module")
def service(collected):
    study = Study.from_data(
        collected, hawkes=HawkesConfig(gibbs_iterations=20, gibbs_burn_in=6),
        fit_seed=0, max_urls=12)
    service = StudyService(study, port=0)  # ephemeral port
    thread = threading.Thread(target=service.serve_forever, daemon=True)
    thread.start()
    yield service
    service.shutdown()
    service.close()
    thread.join(timeout=5)


def _get(service, path, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", service.port, timeout=30)
    try:
        conn.request("GET", path, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


class TestRoutes:
    def test_healthz(self, service):
        status, headers, body = _get(service, "/healthz")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["version"]

    def test_experiments_shares_cli_serializer(self, service):
        status, _, body = _get(service, "/experiments")
        assert status == 200
        assert json.loads(body) == json.loads(
            json.dumps(experiments_payload()))

    def test_stages_lists_keys(self, service):
        status, _, body = _get(service, "/stages")
        assert status == 200
        payload = json.loads(body)
        keys = payload["stages"]
        assert "fits" in keys and "table:11" in keys
        store = payload["store"]
        assert {"hits", "misses", "hit_ratio"} <= set(store)

    def test_table_ok(self, service):
        status, headers, body = _get(service, "/tables/2")
        assert status == 200
        payload = json.loads(body)
        assert payload["table"] == 2
        assert payload["columns"][0] == "Community"
        assert payload["rows"]
        assert "ETag" in headers

    def test_unknown_routes_404(self, service):
        for path in ("/tables/12", "/tables/0", "/tables/abc", "/nope"):
            status, _, body = _get(service, path)
            assert status == 404, path
            assert "error" in json.loads(body)

    def test_bad_influence_params_400(self, service):
        for query in ("category=weird", "source=NotAProcess", "view=wat"):
            status, _, _ = _get(service, f"/influence?{query}")
            assert status == 400, query


class TestETag:
    def test_repeated_requests_byte_identical(self, service):
        first = _get(service, "/tables/4")
        second = _get(service, "/tables/4")
        assert first[2] == second[2]
        assert first[1]["ETag"] == second[1]["ETag"]

    def test_if_none_match_gets_304(self, service):
        _, headers, _ = _get(service, "/tables/4")
        etag = headers["ETag"]
        status, headers304, body = _get(service, "/tables/4",
                                        {"If-None-Match": etag})
        assert status == 304
        assert body == b""
        assert headers304["ETag"] == etag

    def test_star_and_weak_matchers(self, service):
        _, headers, _ = _get(service, "/tables/4")
        etag = headers["ETag"]
        assert _get(service, "/tables/4",
                    {"If-None-Match": "*"})[0] == 304
        assert _get(service, "/tables/4",
                    {"If-None-Match": f"W/{etag}"})[0] == 304

    def test_stale_etag_gets_fresh_body(self, service):
        status, _, body = _get(service, "/tables/4",
                               {"If-None-Match": '"stale"'})
        assert status == 200
        assert body

    def test_etag_matches_stage_key(self, service):
        _, headers, _ = _get(service, "/tables/4")
        assert headers["ETag"] == service.study.etag("table:4")


class TestInfluence:
    def test_full_payload(self, service):
        status, headers, body = _get(service, "/influence")
        assert status == 200
        payload = json.loads(body)
        assert payload["processes"] == list(HAWKES_PROCESSES)
        assert payload["view"] == "batch"
        assert set(payload["categories"]) == {"alternative", "mainstream"}

    def test_filtered_cells(self, service):
        status, _, body = _get(
            service,
            "/influence?category=alternative&source=Twitter")
        assert status == 200
        payload = json.loads(body)
        assert payload["view"] == "batch"  # view survives filtering
        assert payload["cells"]
        assert all(cell["source"] == "Twitter"
                   and cell["category"] == "alternative"
                   for cell in payload["cells"])
        assert len(payload["cells"]) == len(HAWKES_PROCESSES)

    def test_conditional_influence(self, service):
        _, headers, _ = _get(service, "/influence?category=mainstream")
        status, _, _ = _get(service, "/influence?category=mainstream",
                            {"If-None-Match": headers["ETag"]})
        assert status == 304

    def test_live_view_404_until_published(self, service):
        status, _, body = _get(service, "/influence?view=live")
        assert status == 404
        assert "live" in json.loads(body)["error"]

    def test_live_view_serves_published_refit(self, service):
        # Publish the way the live engine does, into the same store.
        engine = LiveEngine(publish_store=service.study.store)
        result = service.study.influence()
        key = engine.publish_influence(result)
        assert key == payload_key(influence_payload(result))
        assert service.study.store.get_ref(LIVE_INFLUENCE_REF) == key

        status, headers, body = _get(service, "/influence?view=live")
        assert status == 200
        payload = json.loads(body)
        assert payload["view"] == "live"
        assert payload["processes"] == list(HAWKES_PROCESSES)
        status304, _, _ = _get(service, "/influence?view=live",
                               {"If-None-Match": headers["ETag"]})
        assert status304 == 304

    def test_publish_without_store_is_noop(self, service):
        engine = LiveEngine()
        assert engine.publish_influence(service.study.influence()) is None


class TestConcurrency:
    def test_concurrent_gets_identical(self, service):
        def fetch(_):
            return _get(service, "/tables/2")

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(fetch, range(16)))
        bodies = {body for _, _, body in results}
        assert len(bodies) == 1
        assert all(status == 200 for status, _, _ in results)

    def test_concurrent_mixed_routes(self, service):
        paths = ["/healthz", "/tables/2", "/tables/9", "/experiments",
                 "/influence?category=alternative"] * 4

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(lambda p: _get(service, p), paths))
        assert all(status == 200 for status, _, _ in results)
