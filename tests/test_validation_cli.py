"""Tests for the validation checklist and the CLI."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.config import HawkesConfig
from repro.core import fit_corpus, select_urls
from repro.paper import EXPERIMENTS, by_id
from repro.validation import (
    ShapeCheck,
    summarize_checks,
    validate_collected,
    validate_influence,
)


class TestPaperRegistry:
    def test_all_experiments_present(self):
        ids = {e.exp_id for e in EXPERIMENTS}
        for n in range(1, 12):
            assert f"Table {n}" in ids
        for n in range(1, 12):
            assert f"Figure {n}" in ids

    def test_by_id(self):
        experiment = by_id("table 4")
        assert experiment.exp_id == "Table 4"

    def test_by_id_unknown(self):
        with pytest.raises(KeyError):
            by_id("Table 99")

    def test_every_experiment_has_bench_and_artifact(self):
        for experiment in EXPERIMENTS:
            assert experiment.bench.startswith("benchmarks/bench_")
            assert experiment.artifact
            assert experiment.paper_values
            assert experiment.shape_checks


class TestValidation:
    def test_collected_checks_run(self, collected):
        checks = validate_collected(collected)
        assert len(checks) >= 8
        # the small world should reproduce most claims
        passed = sum(c.passed for c in checks)
        assert passed >= len(checks) - 2

    def test_influence_checks_run(self, cascades):
        corpus = select_urls(cascades)[:16]
        result = fit_corpus(
            corpus, HawkesConfig(gibbs_iterations=20, gibbs_burn_in=6),
            rng=np.random.default_rng(0))
        checks = validate_influence(result)
        assert len(checks) >= 5
        for check in checks:
            assert isinstance(check, ShapeCheck)
            assert check.detail

    def test_checks_never_crash(self):
        """A degenerate dataset yields failing checks, not exceptions."""
        from repro.collection.store import Dataset
        from repro.collection.recrawl import CategoryRecrawl, RecrawlStats

        class Empty:
            twitter = Dataset()
            reddit = Dataset()
            fourchan = Dataset()
            reddit_six = Dataset()
            reddit_other = Dataset()
            pol = Dataset()
            recrawl = RecrawlStats(alternative=CategoryRecrawl(),
                                   mainstream=CategoryRecrawl())

            def sequence_slices(self):
                return {"/pol/": Dataset(), "Reddit": Dataset(),
                        "Twitter": Dataset()}

        checks = validate_collected(Empty())
        assert all(isinstance(c, ShapeCheck) for c in checks)

    def test_summary_format(self):
        checks = [ShapeCheck("a claim", "Table 1", True, "ok"),
                  ShapeCheck("another", "Figure 2", False, "nope")]
        text = summarize_checks(checks)
        assert "1/2 claims reproduced" in text
        assert "[PASS]" in text
        assert "[FAIL]" in text


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["list"])
        assert args.command == "list"

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "Figure 10" in out

    def test_list_json_shares_endpoint_serializer(self, capsys):
        import json
        from repro.api import experiments_payload
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == json.loads(json.dumps(experiments_payload()))
        assert payload["count"] == len(EXPERIMENTS)
        assert payload["experiments"][0]["id"] == "Table 1"

    def test_world_command(self, tmp_path, capsys):
        code = main(["world", "--seed", "3", "--stories-alt", "30",
                     "--stories-main", "60", "--twitter-users", "50",
                     "--reddit-users", "50", "--out", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "twitter.jsonl").exists()
        assert (tmp_path / "reddit.jsonl").exists()
        assert (tmp_path / "fourchan.jsonl").exists()
        from repro.collection.store import Dataset
        loaded = Dataset.load_jsonl(tmp_path / "twitter.jsonl")
        assert len(loaded) > 0

    def test_experiments_command(self, tmp_path, capsys):
        out_md = tmp_path / "EXP.md"
        code = main(["experiments", "--out", str(out_md),
                     "--results", "results"])
        assert code == 0
        content = out_md.read_text()
        assert "Table 11" in content
        assert "paper vs. measured" in content

    def test_reproduce_unknown(self, capsys):
        assert main(["reproduce", "Table 99"]) == 2
