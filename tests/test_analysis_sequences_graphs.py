"""Tests for sequence tables (9, 10) and the Figure 8 ecosystem graph."""

import pytest

from repro.analysis import graphs, sequences
from repro.collection.store import Dataset, DatasetRecord, UrlOccurrence
from repro.config import PLATFORM_POL, PLATFORM_REDDIT, PLATFORM_TWITTER
from repro.news.domains import NewsCategory

ALT = NewsCategory.ALTERNATIVE


def rec(post_id, t, u, community, platform="x"):
    return DatasetRecord(
        post_id=post_id, platform=platform, community=community,
        author_id="u", created_at=float(t),
        urls=(UrlOccurrence(u, "breitbart.com", ALT),))


@pytest.fixture()
def slices():
    """URL layout:
    a: T(0) -> R(10) -> 4(20)   (triple)
    b: R(0) -> T(5)             (pair)
    c: T only
    d: 4(0) -> R(1) -> T(2)     (triple)
    """
    twitter = Dataset([
        rec("t1", 0, "a", "Twitter"),
        rec("t2", 5, "b", "Twitter"),
        rec("t3", 0, "c", "Twitter"),
        rec("t4", 2, "d", "Twitter"),
    ])
    reddit = Dataset([
        rec("r1", 10, "a", "politics"),
        rec("r2", 0, "b", "politics"),
        rec("r3", 1, "d", "news"),
    ])
    pol = Dataset([
        rec("f1", 20, "a", "/pol/"),
        rec("f2", 0, "d", "/pol/"),
    ])
    return {PLATFORM_POL: pol, PLATFORM_REDDIT: reddit,
            PLATFORM_TWITTER: twitter}


class TestFirstAppearances:
    def test_structure(self, slices):
        firsts = sequences.first_appearances(slices, ALT)
        assert set(firsts["a"]) == {PLATFORM_TWITTER, PLATFORM_REDDIT,
                                    PLATFORM_POL}
        assert firsts["a"][PLATFORM_TWITTER] == 0

    def test_sequence_order(self, slices):
        firsts = sequences.first_appearances(slices, ALT)
        assert sequences.sequence_of(firsts["a"]) == (
            PLATFORM_TWITTER, PLATFORM_REDDIT, PLATFORM_POL)
        assert sequences.sequence_of(firsts["d"]) == (
            PLATFORM_POL, PLATFORM_REDDIT, PLATFORM_TWITTER)

    def test_tie_broken_by_name(self):
        firsts = {"B": 0.0, "A": 0.0}
        assert sequences.sequence_of(firsts) == ("A", "B")


class TestTable9:
    def test_first_hop_distribution(self, slices):
        rows = sequences.first_hop_distribution(slices, ALT)
        shares = {r.sequence: r for r in rows}
        assert shares["T only"].count == 1
        assert shares["T→R"].count == 1     # url a
        assert shares["R→T"].count == 1     # url b
        assert shares["4→R"].count == 1     # url d
        total_pct = sum(r.percentage for r in rows)
        assert total_pct == pytest.approx(100.0)

    def test_empty(self):
        rows = sequences.first_hop_distribution(
            {PLATFORM_TWITTER: Dataset()}, ALT)
        assert rows == []


class TestTable10:
    def test_triplets_only(self, slices):
        rows = sequences.triplet_distribution(slices, ALT)
        shares = {r.sequence: r.count for r in rows}
        assert shares == {"T→R→4": 1, "4→R→T": 1}

    def test_head_share(self, slices):
        rows = sequences.triplet_distribution(slices, ALT)
        assert sequences.head_of_sequence_share(rows, "T") == \
            pytest.approx(50.0)
        assert sequences.head_of_sequence_share(rows, "4") == \
            pytest.approx(50.0)
        assert sequences.head_of_sequence_share(rows, "R") == 0.0


class TestFigure8Graph:
    def test_graph_structure(self, slices):
        url_domains = {u: "breitbart.com" for u in "abcd"}
        graph = graphs.build_ecosystem_graph(slices, ALT, url_domains)
        assert graph.nodes["breitbart.com"]["kind"] == "domain"
        # 4 URLs -> domain out-weight 4 split by first platform
        assert graph["breitbart.com"][PLATFORM_TWITTER]["weight"] == 2
        assert graph["breitbart.com"][PLATFORM_REDDIT]["weight"] == 1
        assert graph["breitbart.com"][PLATFORM_POL]["weight"] == 1

    def test_first_hop_edges(self, slices):
        url_domains = {u: "breitbart.com" for u in "abcd"}
        graph = graphs.build_ecosystem_graph(slices, ALT, url_domains)
        assert graph[PLATFORM_TWITTER][PLATFORM_REDDIT]["weight"] == 1
        assert graph[PLATFORM_REDDIT][PLATFORM_TWITTER]["weight"] == 1
        assert graph[PLATFORM_POL][PLATFORM_REDDIT]["weight"] == 1

    def test_unknown_domain_urls_skipped(self, slices):
        graph = graphs.build_ecosystem_graph(slices, ALT, {})
        domain_nodes = [n for n, d in graph.nodes(data=True)
                        if d.get("kind") == "domain"]
        assert domain_nodes == []

    def test_domain_first_platform_shares(self, slices):
        url_domains = {u: "breitbart.com" for u in "abcd"}
        graph = graphs.build_ecosystem_graph(slices, ALT, url_domains)
        rows = graphs.domain_first_platform_shares(
            graph, (PLATFORM_POL, PLATFORM_REDDIT, PLATFORM_TWITTER))
        assert len(rows) == 1
        row = rows[0]
        assert row.total == 4
        assert row.dominant == PLATFORM_TWITTER
        assert row.shares[PLATFORM_TWITTER] == pytest.approx(0.5)

    def test_platform_hop_weights(self, slices):
        url_domains = {u: "breitbart.com" for u in "abcd"}
        graph = graphs.build_ecosystem_graph(slices, ALT, url_domains)
        hops = graphs.platform_hop_weights(
            graph, (PLATFORM_POL, PLATFORM_REDDIT, PLATFORM_TWITTER))
        assert hops[(PLATFORM_TWITTER, PLATFORM_REDDIT)] == 1
        assert (PLATFORM_TWITTER, PLATFORM_POL) not in hops
