"""Unit tests for the batched EM engine (packing + fit semantics)."""

import numpy as np
import pytest

from repro.core.events import bin_timestamps
from repro.core.hawkes.basis import LogBinnedLagBasis
from repro.core.hawkes.batched import (
    BatchedParentStructure,
    PackedCascades,
    fit_em_batched,
)
from repro.core.hawkes.inference import fit_em
from repro.core.hawkes.kernels import segment_ranges

K = 4
MAX_LAG = 48


def make_events(rng, n_events, n_procs=K, horizon=4000.0):
    ts = np.sort(rng.uniform(0, horizon, size=n_events))
    procs = rng.integers(0, n_procs, size=n_events)
    return bin_timestamps(ts, procs, n_processes=n_procs, delta_t=60.0)


@pytest.fixture(scope="module")
def events_batch():
    rng = np.random.default_rng(42)
    batch = [make_events(rng, int(rng.integers(1, 25))) for _ in range(8)]
    # Degenerate shapes the corpus actually contains: a lone event and
    # a single-process cascade.
    batch.append(bin_timestamps([30.0], [1], n_processes=K, delta_t=60.0))
    batch.append(bin_timestamps([0.0, 120.0, 180.0], [2, 2, 2],
                                n_processes=K, delta_t=60.0))
    return batch


class TestPackedCascades:
    def test_segment_layout(self, events_batch):
        packed = PackedCascades(events_batch, MAX_LAG)
        assert packed.n_cascades == len(events_batch)
        assert packed.entry_offsets[-1] == sum(len(e) for e in events_batch)
        for c, ev in enumerate(events_batch):
            lo, hi = packed.entry_offsets[c], packed.entry_offsets[c + 1]
            assert np.array_equal(packed.cascade_of[lo:hi], np.full(hi - lo, c))
            assert np.array_equal(
                packed.bins[lo:hi] - packed.bin_offsets[c], ev.bins)
            assert np.array_equal(packed.processes[lo:hi], ev.processes)
            assert np.array_equal(packed.counts[lo:hi], ev.counts)

    def test_bins_globally_sorted(self, events_batch):
        packed = PackedCascades(events_batch, MAX_LAG)
        assert np.all(np.diff(packed.bins) >= 0)

    def test_guard_gap_exceeds_max_lag(self, events_batch):
        packed = PackedCascades(events_batch, MAX_LAG)
        for c in range(packed.n_cascades - 1):
            last = packed.bin_offsets[c] + packed.n_bins[c] - 1
            first_next = packed.bin_offsets[c + 1]
            assert first_next - last > MAX_LAG

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError):
            PackedCascades([], MAX_LAG)

    def test_rejects_mixed_process_counts(self, events_batch):
        odd = bin_timestamps([0.0], [0], n_processes=K + 1, delta_t=60.0)
        with pytest.raises(ValueError):
            PackedCascades(list(events_batch) + [odd], MAX_LAG)


class TestBatchedParentStructure:
    def test_candidates_never_cross_cascades(self, events_batch):
        packed = PackedCascades(events_batch, MAX_LAG)
        basis = LogBinnedLagBasis(MAX_LAG)
        structure = BatchedParentStructure(packed, basis)
        # Recompute the candidate (parent, child) index pairs and check
        # both sides always live in the same cascade.
        lo = np.searchsorted(packed.bins, packed.bins - MAX_LAG, "left")
        hi = np.searchsorted(packed.bins, packed.bins, "left")
        flat_idx, sizes, _ = segment_ranges(lo, hi)
        parent_cascade = packed.cascade_of[flat_idx]
        child_cascade = np.repeat(packed.cascade_of, sizes)
        assert np.array_equal(parent_cascade, child_cascade)
        assert np.array_equal(structure.flat_cascade, child_cascade)
        assert np.all(structure.flat_lag >= 1)
        assert np.all(structure.flat_lag <= MAX_LAG)

    def test_matches_per_cascade_structure(self, events_batch):
        from repro.core.hawkes.kernels import ParentStructure
        packed = PackedCascades(events_batch, MAX_LAG)
        basis = LogBinnedLagBasis(MAX_LAG)
        batched = BatchedParentStructure(packed, basis)
        # Candidate enumeration per cascade must be the per-URL one.
        cursor = 0
        for c, ev in enumerate(events_batch):
            single = ParentStructure(ev, basis)
            n = len(single.flat_src)
            sl = slice(cursor, cursor + n)
            assert np.array_equal(batched.flat_src[sl], single.flat_src)
            assert np.array_equal(batched.flat_lag[sl], single.flat_lag)
            assert np.array_equal(batched.flat_dst[sl], single.flat_dst)
            assert np.array_equal(batched.flat_cnt[sl], single.flat_cnt)
            assert np.all(batched.flat_cascade[sl] == c)
            cursor += n
        assert cursor == len(batched.flat_src)


class TestFitEmBatched:
    def test_fixed_iterations_near_bit_identical(self, events_batch):
        # tol=0 removes early stopping, so every cascade runs exactly
        # max_iterations sweeps in both engines and the only remaining
        # differences are float association in exposure/likelihood.
        basis = LogBinnedLagBasis(MAX_LAG)
        batch = fit_em_batched(events_batch, MAX_LAG, basis=basis,
                               max_iterations=20, tol=0.0)
        for i, ev in enumerate(events_batch):
            ref = fit_em(ev, MAX_LAG, basis=basis, max_iterations=20,
                         tol=0.0)
            got = batch.fit_result(i)
            np.testing.assert_allclose(got.params.background,
                                       ref.params.background,
                                       rtol=1e-9, atol=1e-12)
            np.testing.assert_allclose(got.params.weights,
                                       ref.params.weights,
                                       rtol=1e-9, atol=1e-12)
            np.testing.assert_allclose(got.params.impulse,
                                       ref.params.impulse,
                                       rtol=1e-9, atol=1e-12)
            assert got.log_likelihood == pytest.approx(
                ref.log_likelihood, rel=1e-9)
            assert got.n_iterations == ref.n_iterations == 20

    def test_default_tol_matches_per_url(self, events_batch):
        basis = LogBinnedLagBasis(MAX_LAG)
        batch = fit_em_batched(events_batch, MAX_LAG, basis=basis)
        for i, ev in enumerate(events_batch):
            ref = fit_em(ev, MAX_LAG, basis=basis)
            np.testing.assert_allclose(batch.weights[i], ref.params.weights,
                                       rtol=5e-3, atol=1e-8)
            np.testing.assert_allclose(batch.background[i],
                                       ref.params.background,
                                       rtol=5e-3, atol=1e-10)
            assert batch.log_likelihood[i] == pytest.approx(
                ref.log_likelihood, rel=1e-4)

    def test_batch_composition_is_bit_identical(self, events_batch):
        # Cascades never interact inside a batch, so any split of the
        # same cascades produces the same bits.
        basis = LogBinnedLagBasis(MAX_LAG)
        full = fit_em_batched(events_batch, MAX_LAG, basis=basis)
        half = len(events_batch) // 2
        first = fit_em_batched(events_batch[:half], MAX_LAG, basis=basis)
        rest = fit_em_batched(events_batch[half:], MAX_LAG, basis=basis)
        merged_w = np.concatenate([first.weights, rest.weights])
        merged_bg = np.concatenate([first.background, rest.background])
        merged_ll = np.concatenate([first.log_likelihood,
                                    rest.log_likelihood])
        assert np.array_equal(full.weights, merged_w)
        assert np.array_equal(full.background, merged_bg)
        assert np.array_equal(full.log_likelihood, merged_ll)
        assert np.array_equal(
            full.n_iterations,
            np.concatenate([first.n_iterations, rest.n_iterations]))

    def test_singleton_batch_matches_fit_em(self):
        ev = bin_timestamps([0.0, 70.0, 200.0, 260.0], [0, 1, 0, 2],
                            n_processes=K, delta_t=60.0)
        basis = LogBinnedLagBasis(MAX_LAG)
        batch = fit_em_batched([ev], MAX_LAG, basis=basis)
        ref = fit_em(ev, MAX_LAG, basis=basis)
        np.testing.assert_allclose(batch.weights[0], ref.params.weights,
                                   rtol=1e-7, atol=1e-10)
        assert batch.log_likelihood[0] == pytest.approx(
            ref.log_likelihood, rel=1e-7)

    def test_fit_result_expands_valid_params(self, events_batch):
        batch = fit_em_batched(events_batch, MAX_LAG)
        result = batch.fit_result(0)
        k = events_batch[0].n_processes
        assert result.params.background.shape == (k,)
        assert result.params.weights.shape == (k, k)
        assert result.params.impulse.shape == (k, k, MAX_LAG)
        np.testing.assert_allclose(result.params.impulse.sum(axis=2), 1.0)
        assert np.isfinite(result.log_likelihood)

    def test_basis_max_lag_mismatch_rejected(self, events_batch):
        with pytest.raises(ValueError):
            fit_em_batched(events_batch, MAX_LAG,
                           basis=LogBinnedLagBasis(MAX_LAG + 1))

    def test_pmfs_stay_normalized(self, events_batch):
        batch = fit_em_batched(events_batch, MAX_LAG)
        np.testing.assert_allclose(batch.bucket_pmf.sum(axis=3), 1.0)
        assert np.all(batch.background > 0)
        assert np.all(batch.weights >= 0)
        assert np.all(batch.n_iterations >= 1)
