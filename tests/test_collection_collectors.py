"""Tests for the stream collector, crawlers, and tweet re-crawler."""

import pytest

from repro.collection.crawlers import FourchanCrawler, RedditDumpReader
from repro.collection.recrawl import TweetRecrawler
from repro.collection.streaming import TwitterStreamCollector
from repro.config import STUDY_START, TWITTER_GAPS
from repro.news.domains import NewsCategory
from repro.platforms.fourchan import ARCHIVE_RETENTION, FourchanPlatform
from repro.platforms.reddit import RedditPlatform
from repro.platforms.twitter import TwitterPlatform
from repro.timeutil import Interval, utc


def make_twitter_with_tweets(times_and_texts):
    platform = TwitterPlatform()
    user = platform.register_user("u", 0)
    for created_at, text in times_and_texts:
        platform.post_tweet(user.user_id, text, created_at)
    return platform


NEWS_TEXT = "read http://breitbart.com/news/x-{} now"
PLAIN_TEXT = "nothing to see here {}"


class TestTwitterStream:
    def test_keeps_only_news_tweets(self):
        platform = make_twitter_with_tweets([
            (STUDY_START + 10, NEWS_TEXT.format(1)),
            (STUDY_START + 20, PLAIN_TEXT.format(1)),
        ])
        dataset = TwitterStreamCollector().collect(platform)
        assert len(dataset) == 1
        assert dataset.records[0].urls[0].domain == "breitbart.com"

    def test_gap_windows_skipped(self):
        inside_gap = utc(2016, 10, 29)  # first Twitter gap
        platform = make_twitter_with_tweets([
            (inside_gap, NEWS_TEXT.format(1)),
            (STUDY_START + 10, NEWS_TEXT.format(2)),
        ])
        dataset = TwitterStreamCollector().collect(platform)
        assert len(dataset) == 1
        assert dataset.records[0].created_at == STUDY_START + 10

    def test_sample_rate(self):
        tweets = [(STUDY_START + i, NEWS_TEXT.format(i))
                  for i in range(2000)]
        platform = make_twitter_with_tweets(tweets)
        collector = TwitterStreamCollector(sample_rate=0.25, seed=3)
        dataset = collector.collect(platform)
        assert len(dataset) == pytest.approx(500, rel=0.2)

    def test_invalid_sample_rate(self):
        with pytest.raises(ValueError):
            TwitterStreamCollector(sample_rate=0.0)

    def test_records_sorted_by_time(self):
        platform = make_twitter_with_tweets([
            (STUDY_START + 100, NEWS_TEXT.format(1)),
            (STUDY_START + 10, NEWS_TEXT.format(2)),
        ])
        dataset = TwitterStreamCollector().collect(platform)
        times = [r.created_at for r in dataset]
        assert times == sorted(times)


class TestRedditDump:
    def test_collects_posts_and_comments(self):
        platform = RedditPlatform()
        platform.create_subreddit("politics")
        post = platform.submit_post("politics", "a", "T", 100,
                                    body="http://cnn.com/x")
        platform.submit_comment(post.post_id, "b",
                                "see http://rt.com/y", 200)
        platform.submit_comment(post.post_id, "c", "no links", 300)
        dataset = RedditDumpReader().collect(platform)
        assert len(dataset) == 2
        communities = {r.community for r in dataset}
        assert communities == {"politics"}

    def test_no_gaps_for_reddit(self):
        # Pushshift dumps are complete: a post inside a Twitter gap window
        # is still collected.
        platform = RedditPlatform()
        platform.create_subreddit("news")
        platform.submit_post("news", "a", "T", utc(2016, 12, 1),
                             body="http://cnn.com/x")
        dataset = RedditDumpReader().collect(platform)
        assert len(dataset) == 1


class TestFourchanCrawler:
    def make_platform(self):
        platform = FourchanPlatform()
        platform.create_board("pol", thread_capacity=2)
        return platform

    def test_collects_url_posts(self):
        platform = self.make_platform()
        thread = platform.create_thread(
            "pol", "look http://infowars.com/a", STUDY_START)
        platform.reply(thread.thread_id, "no url", STUDY_START + 60)
        dataset = FourchanCrawler().collect(platform)
        assert len(dataset) == 1
        assert dataset.records[0].community == "/pol/"

    def test_board_filter(self):
        platform = self.make_platform()
        platform.create_board("sp")
        platform.create_thread("pol", "http://rt.com/a", STUDY_START)
        platform.create_thread("sp", "http://rt.com/b", STUDY_START)
        only_pol = FourchanCrawler().collect(platform, boards=["/pol/"])
        assert len(only_pol) == 1

    def test_post_lost_when_whole_life_inside_gap(self):
        gap = Interval(utc(2016, 12, 16), utc(2016, 12, 26))
        platform = self.make_platform()
        # Thread created and purged inside the gap, and its 7-day archive
        # retention also elapses inside the gap window? Retention is 7
        # days, gap is 10 days, so a thread purged in the first 3 gap
        # days is gone before the crawler returns.
        t_created = gap.start + 3600
        thread = platform.create_thread(
            "pol", "http://rt.com/lost", t_created)
        # purge immediately by filling the board
        platform.create_thread("pol", "filler1", t_created + 60)
        platform.create_thread("pol", "filler2", t_created + 120)
        assert thread.purged_at is not None
        crawler = FourchanCrawler(gaps=(gap,))
        dataset = crawler.collect(platform)
        urls = {u.url for r in dataset for u in r.urls}
        assert "http://rt.com/lost" not in urls

    def test_post_recovered_when_thread_outlives_gap(self):
        gap = Interval(utc(2016, 12, 16), utc(2016, 12, 26))
        platform = self.make_platform()
        thread = platform.create_thread(
            "pol", "http://rt.com/kept", gap.start + 3600)
        # never purged -> crawler picks it up after the gap
        crawler = FourchanCrawler(gaps=(gap,))
        dataset = crawler.collect(platform)
        urls = {u.url for r in dataset for u in r.urls}
        assert "http://rt.com/kept" in urls

    def test_anonymous_records(self):
        platform = self.make_platform()
        platform.create_thread("pol", "http://rt.com/a", STUDY_START)
        dataset = FourchanCrawler().collect(platform)
        assert dataset.records[0].author_id is None


class TestRecrawler:
    def test_counts_and_engagement(self):
        platform = TwitterPlatform()
        user = platform.register_user("u", 0)
        alive = platform.post_tweet(
            user.user_id, NEWS_TEXT.format(1), STUDY_START + 5)
        alive.retweet_count = 10
        alive.like_count = 2
        dead = platform.post_tweet(
            user.user_id, NEWS_TEXT.format(2), STUDY_START + 6)
        platform.delete_tweet(dead.tweet_id)
        dataset = TwitterStreamCollector().collect(platform)
        stats = TweetRecrawler().recrawl(dataset, platform)
        alt = stats.of(NewsCategory.ALTERNATIVE)
        assert alt.tweets == 2
        assert alt.retrieved == 1
        assert alt.retrieved_fraction == pytest.approx(0.5)
        assert alt.mean_retweets == pytest.approx(10)
        assert alt.mean_likes == pytest.approx(2)

    def test_retweet_engagement_credited_from_original(self):
        platform = TwitterPlatform()
        a = platform.register_user("a", 0)
        b = platform.register_user("b", 0)
        original = platform.post_tweet(
            a.user_id, NEWS_TEXT.format(3), STUDY_START + 5)
        original.retweet_count = 99
        platform.retweet(b.user_id, original.tweet_id, STUDY_START + 50)
        dataset = TwitterStreamCollector().collect(platform)
        stats = TweetRecrawler().recrawl(dataset, platform)
        alt = stats.of(NewsCategory.ALTERNATIVE)
        assert alt.tweets == 2
        assert max(alt.retweets) >= 99

    def test_mixed_category_tweet_counted_in_both(self):
        platform = TwitterPlatform()
        user = platform.register_user("u", 0)
        platform.post_tweet(
            user.user_id,
            "http://rt.com/a http://cnn.com/b", STUDY_START + 5)
        dataset = TwitterStreamCollector().collect(platform)
        stats = TweetRecrawler().recrawl(dataset, platform)
        assert stats.alternative.tweets == 1
        assert stats.mainstream.tweets == 1
