"""Tests for the diurnal-cycle extension."""

import numpy as np
import pytest

from repro.config import STUDY_START
from repro.news.articles import ArticleGenerator
from repro.news.domains import NewsCategory
from repro.synthesis.cascades import CascadeEngine
from repro.synthesis.diurnal import (
    DiurnalProfile,
    apply_diurnal,
    hourly_histogram,
)
from repro.synthesis.params import GroundTruth
from repro.timeutil import SECONDS_PER_DAY


class TestProfile:
    def test_default_valid(self):
        profile = DiurnalProfile()
        assert profile.hourly.shape == (24,)
        assert abs(profile.normalized().sum() - 1.0) < 1e-12

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            DiurnalProfile(hourly=np.ones(12))

    def test_nonpositive_rejected(self):
        hourly = np.ones(24)
        hourly[3] = 0.0
        with pytest.raises(ValueError):
            DiurnalProfile(hourly=hourly)

    def test_sampling_follows_profile(self, rng):
        hourly = np.full(24, 1e-6)
        hourly[12] = 1.0
        profile = DiurnalProfile(hourly=hourly)
        seconds = profile.sample_second_of_day(rng, size=500)
        hours = (seconds // 3600).astype(int)
        assert (hours == 12).mean() > 0.95

    def test_multiplier_mean_one(self):
        profile = DiurnalProfile()
        values = [profile.multiplier(h * 3600.0) for h in range(24)]
        assert np.mean(values) == pytest.approx(1.0)


class TestApplyDiurnal:
    def test_preserves_count_and_days(self, rng):
        events = [(float(STUDY_START + i * SECONDS_PER_DAY + 7000), "Twitter")
                  for i in range(10)]
        reshaped = apply_diurnal(events, rng)
        assert len(reshaped) == len(events)
        original_days = sorted(int(t // SECONDS_PER_DAY)
                               for t, _ in events)
        new_days = sorted(int(t // SECONDS_PER_DAY)
                          for t, _ in reshaped)
        assert new_days == original_days

    def test_first_event_anchored(self, rng):
        events = [(1000.0, "Twitter"), (50_000.0, "/pol/")]
        reshaped = apply_diurnal(events, rng, keep_first=True)
        assert (1000.0, "Twitter") in reshaped

    def test_sorted_output(self, rng):
        events = [(float(i * 40_000), "Twitter") for i in range(20)]
        reshaped = apply_diurnal(events, rng)
        times = [t for t, _ in reshaped]
        assert times == sorted(times)

    def test_empty(self, rng):
        assert apply_diurnal([], rng) == []

    def test_histogram_matches_profile(self, rng):
        hourly = np.full(24, 0.05)
        hourly[[20, 21, 22]] = 2.0
        profile = DiurnalProfile(hourly=hourly)
        events = [(float(i * 9973), "x") for i in range(4000)]
        reshaped = apply_diurnal(events, rng, profile, keep_first=False)
        histogram = hourly_histogram([t for t, _ in reshaped])
        assert histogram[[20, 21, 22]].sum() > 0.5


class TestEngineIntegration:
    def test_diurnal_engine_produces_cycle(self, registry, rng):
        truth = GroundTruth(diurnal_enabled=True)
        engine = CascadeEngine(truth, rng)
        generator = ArticleGenerator(registry, seed=5)
        timestamps = []
        for i in range(250):
            article = generator.generate(
                NewsCategory.MAINSTREAM, STUDY_START + i * 7200)
            cascade = engine.generate(article)
            timestamps.extend(t for t, _ in cascade.events)
        histogram = hourly_histogram(timestamps)
        # default profile: deep night (07-10 UTC) well below evening
        night = histogram[7:10].mean()
        evening = histogram[[22, 23, 0]].mean()
        assert evening > 1.5 * night

    def test_disabled_by_default(self):
        truth = GroundTruth()
        assert not truth.diurnal_enabled
