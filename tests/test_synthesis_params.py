"""Tests for the paper-calibrated ground truth parameters."""

import numpy as np
import pytest

from repro.config import HAWKES_PROCESSES
from repro.synthesis.params import (
    GroundTruth,
    PAPER_BACKGROUND_ALTERNATIVE,
    PAPER_BACKGROUND_MAINSTREAM,
    PAPER_WEIGHTS_ALTERNATIVE,
    PAPER_WEIGHTS_MAINSTREAM,
    default_ground_truth,
)


class TestPaperMatrices:
    """Consistency of the Fig. 10 transcription with the paper's prose."""

    def test_twitter_self_excitation_values(self):
        t = HAWKES_PROCESSES.index("Twitter")
        assert PAPER_WEIGHTS_ALTERNATIVE[t, t] == pytest.approx(0.1554)
        assert PAPER_WEIGHTS_MAINSTREAM[t, t] == pytest.approx(0.1096)

    def test_twitter_self_excitation_is_global_max(self):
        assert PAPER_WEIGHTS_ALTERNATIVE.max() == pytest.approx(0.1554)
        assert PAPER_WEIGHTS_MAINSTREAM.max() == pytest.approx(0.1096)

    def test_the_donald_inputs_all_alt_dominant(self):
        """The paper: The_Donald is the only community whose *inputs* are
        all stronger for alternative URLs."""
        td = HAWKES_PROCESSES.index("The_Donald")
        assert np.all(PAPER_WEIGHTS_ALTERNATIVE[:, td]
                      > PAPER_WEIGHTS_MAINSTREAM[:, td])

    def test_twitter_outputs_mainstream_dominant_except_the_donald(self):
        t = HAWKES_PROCESSES.index("Twitter")
        td = HAWKES_PROCESSES.index("The_Donald")
        for j in range(8):
            alt = PAPER_WEIGHTS_ALTERNATIVE[t, j]
            main = PAPER_WEIGHTS_MAINSTREAM[t, j]
            if j in (t, td):
                assert alt > main
            else:
                assert main > alt

    def test_pol_self_excitation(self):
        pol = HAWKES_PROCESSES.index("/pol/")
        assert PAPER_WEIGHTS_ALTERNATIVE[pol, pol] == pytest.approx(0.0761)
        assert PAPER_WEIGHTS_MAINSTREAM[pol, pol] == pytest.approx(0.0734)

    def test_diagonals_prominent(self):
        # Self-excitation should be the max of its row for most processes.
        for weights in (PAPER_WEIGHTS_ALTERNATIVE, PAPER_WEIGHTS_MAINSTREAM):
            dominant = sum(
                weights[i, i] == weights[i].max() for i in range(8))
            assert dominant >= 5

    def test_matrices_subcritical(self):
        for weights in (PAPER_WEIGHTS_ALTERNATIVE, PAPER_WEIGHTS_MAINSTREAM):
            radius = np.max(np.abs(np.linalg.eigvals(weights)))
            assert radius < 1.0

    def test_background_rates_twitter_highest(self):
        assert PAPER_BACKGROUND_ALTERNATIVE.argmax() == 7
        assert PAPER_BACKGROUND_MAINSTREAM.argmax() == 7

    def test_the_donald_alt_background_exceeds_main(self):
        # Section 5.3: The_Donald has a higher background rate for
        # alternative than mainstream URLs.
        td = HAWKES_PROCESSES.index("The_Donald")
        assert (PAPER_BACKGROUND_ALTERNATIVE[td]
                > PAPER_BACKGROUND_MAINSTREAM[td])


class TestGroundTruth:
    def test_extended_dimensions(self):
        truth = default_ground_truth()
        k = len(truth.processes)
        assert k == 10
        assert truth.weights_alternative.shape == (k, k)
        assert truth.background_mainstream.shape == (k,)

    def test_core_block_preserved(self):
        truth = default_ground_truth()
        assert np.allclose(truth.weights_alternative[:8, :8],
                           PAPER_WEIGHTS_ALTERNATIVE)
        assert np.allclose(truth.background_alternative[:8],
                           PAPER_BACKGROUND_ALTERNATIVE)

    def test_extended_matrix_still_subcritical(self):
        truth = default_ground_truth()
        for alternative in (True, False):
            weights = truth.weights(alternative)
            radius = np.max(np.abs(np.linalg.eigvals(weights)))
            assert radius < 1.0

    def test_impulse_is_pmf(self):
        truth = default_ground_truth()
        impulse = truth.impulse()
        assert impulse.shape[2] == truth.max_lag_minutes
        assert np.allclose(impulse.sum(axis=2), 1.0)

    def test_impulse_decays(self):
        truth = default_ground_truth()
        impulse = truth.impulse()[0, 0]
        assert impulse[0] > impulse[59] > impulse[-1]

    def test_category_accessors(self):
        truth = default_ground_truth()
        assert truth.weights(True) is truth.weights_alternative
        assert truth.background(False) is truth.background_mainstream

    def test_local_home_probs_normalized(self):
        truth = default_ground_truth()
        assert sum(truth.local_home_probs) == pytest.approx(1.0)

    def test_custom_dimensions_validated(self):
        with pytest.raises(ValueError):
            GroundTruth(weights_alternative=np.ones((3, 3)))
