"""Tests for URL extraction and canonicalization (incl. property tests)."""

import pytest
from hypothesis import given, strategies as st

from repro.news.urls import canonicalize_url, extract_urls, registered_domain


class TestExtractUrls:
    def test_single_url(self):
        urls = extract_urls("check this http://breitbart.com/news/a-1 out")
        assert urls == ["http://breitbart.com/news/a-1"]

    def test_https(self):
        assert extract_urls("https://cnn.com/x") == ["https://cnn.com/x"]

    def test_multiple_urls_in_order(self):
        text = "a http://a.com/1 b http://b.com/2"
        assert extract_urls(text) == ["http://a.com/1", "http://b.com/2"]

    def test_no_urls(self):
        assert extract_urls("no links here") == []

    def test_trailing_punctuation_stripped(self):
        assert extract_urls("see http://cnn.com/story.") == ["http://cnn.com/story"]
        assert extract_urls("see http://cnn.com/story, then")[0] == "http://cnn.com/story"

    def test_parenthesized_url(self):
        urls = extract_urls("(see http://cnn.com/story)")
        assert urls == ["http://cnn.com/story"]

    def test_url_with_query(self):
        urls = extract_urls("http://x.com/a?b=1&c=2 tail")
        assert urls == ["http://x.com/a?b=1&c=2"]

    def test_bare_domain_without_scheme_ignored(self):
        assert extract_urls("visit cnn.com today") == []

    def test_newline_terminates_url(self):
        urls = extract_urls("http://a.com/x\nhttp://b.com/y")
        assert urls == ["http://a.com/x", "http://b.com/y"]


class TestCanonicalize:
    def test_https_collapsed_to_http(self):
        assert canonicalize_url("https://cnn.com/a") == "http://cnn.com/a"

    def test_www_stripped(self):
        assert canonicalize_url("http://www.cnn.com/a") == "http://cnn.com/a"

    def test_mobile_subdomain_stripped(self):
        assert canonicalize_url("http://m.cnn.com/a") == "http://cnn.com/a"

    def test_host_lowercased(self):
        assert canonicalize_url("http://CNN.com/A") == "http://cnn.com/A"

    def test_path_case_preserved(self):
        assert canonicalize_url("http://cnn.com/Story") == "http://cnn.com/Story"

    def test_trailing_slash_removed(self):
        assert canonicalize_url("http://cnn.com/a/") == "http://cnn.com/a"

    def test_root_slash_kept(self):
        assert canonicalize_url("http://cnn.com/") == "http://cnn.com/"
        assert canonicalize_url("http://cnn.com") == "http://cnn.com/"

    def test_fragment_removed(self):
        assert canonicalize_url("http://cnn.com/a#frag") == "http://cnn.com/a"

    def test_tracker_params_removed(self):
        url = "http://cnn.com/a?utm_source=tw&utm_medium=social&id=3"
        assert canonicalize_url(url) == "http://cnn.com/a?id=3"

    def test_query_params_sorted(self):
        assert (canonicalize_url("http://x.com/a?b=2&a=1")
                == canonicalize_url("http://x.com/a?a=1&b=2"))

    def test_default_ports_stripped(self):
        assert canonicalize_url("http://cnn.com:80/a") == "http://cnn.com/a"
        assert canonicalize_url("https://cnn.com:443/a") == "http://cnn.com/a"

    def test_duplicate_slashes_collapsed(self):
        assert canonicalize_url("http://cnn.com//a///b") == "http://cnn.com/a/b"

    def test_equivalent_variants_collide(self):
        variants = [
            "https://www.breitbart.com/news/story-1/",
            "http://breitbart.com/news/story-1",
            "HTTP://BREITBART.COM/news/story-1#x",
            "http://m.breitbart.com/news/story-1?utm_campaign=x",
        ]
        canonical = {canonicalize_url(v) for v in variants}
        assert canonical == {"http://breitbart.com/news/story-1"}


class TestRegisteredDomain:
    def test_basic(self):
        assert registered_domain("http://cnn.com/a") == "cnn.com"

    def test_strips_www(self):
        assert registered_domain("http://www.cnn.com/a") == "cnn.com"

    def test_keeps_real_subdomain(self):
        assert registered_domain("http://abcnews.go.com/a") == "abcnews.go.com"

    def test_strips_port(self):
        assert registered_domain("http://cnn.com:8080/a") == "cnn.com"


# -- property-based -----------------------------------------------------------

_path_chars = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789-/._"),
    max_size=30)
_hosts = st.sampled_from([
    "cnn.com", "www.cnn.com", "breitbart.com", "m.infowars.com",
    "abcnews.go.com", "example.org", "a.b.c.example.net",
])


@given(host=_hosts, path=_path_chars,
       scheme=st.sampled_from(["http", "https"]))
def test_canonicalize_idempotent(host, path, scheme):
    url = f"{scheme}://{host}/{path}"
    once = canonicalize_url(url)
    assert canonicalize_url(once) == once


@given(host=_hosts, path=_path_chars)
def test_canonical_url_always_http_lower_host(host, path):
    canonical = canonicalize_url(f"https://{host}/{path}")
    assert canonical.startswith("http://")
    authority = canonical.split("//", 1)[1].split("/", 1)[0]
    assert authority == authority.lower()


@given(text=st.text(max_size=200))
def test_extract_urls_never_crashes(text):
    for url in extract_urls(text):
        assert url.lower().startswith("http")
