"""Tests for the EXPERIMENTS.md generator."""

from pathlib import Path

import pytest

from repro.paper import EXPERIMENTS
from repro.reporting.experiments import (
    generate_markdown,
    render_experiment,
    write_experiments_md,
)


class TestRenderExperiment:
    def test_with_artifact(self, tmp_path):
        experiment = EXPERIMENTS[0]
        (tmp_path / experiment.artifact).write_text("MEASURED CONTENT")
        text = render_experiment(experiment, tmp_path)
        assert experiment.exp_id in text
        assert "MEASURED CONTENT" in text
        assert "```" in text

    def test_without_artifact(self, tmp_path):
        experiment = EXPERIMENTS[0]
        text = render_experiment(experiment, tmp_path)
        assert "not generated yet" in text

    def test_paper_values_listed(self, tmp_path):
        experiment = EXPERIMENTS[0]
        text = render_experiment(experiment, tmp_path)
        for value in experiment.paper_values:
            assert value in text


class TestGenerateMarkdown:
    def test_index_contains_all(self, tmp_path):
        text = generate_markdown(tmp_path)
        for experiment in EXPERIMENTS:
            assert experiment.exp_id in text

    def test_write(self, tmp_path):
        out = tmp_path / "EXP.md"
        path = write_experiments_md(out, tmp_path)
        assert path == out
        assert out.read_text().startswith("# EXPERIMENTS")

    def test_uses_real_results_when_present(self):
        results = Path("results")
        # The dir may hold only machine-readable benchmark JSON (e.g.
        # BENCH_core_fitters.json); rendered artifacts are .txt files.
        if not any(results.glob("*.txt")):
            pytest.skip("results/ artifacts not generated")
        text = generate_markdown(results)
        # at least some artifacts should be embedded
        assert text.count("```") >= 4
