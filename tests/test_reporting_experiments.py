"""Tests for the EXPERIMENTS.md generator."""

from pathlib import Path

import pytest

from repro.paper import EXPERIMENTS
from repro.reporting.experiments import (
    generate_markdown,
    render_experiment,
    write_experiments_md,
)


class TestRenderExperiment:
    def test_with_artifact(self, tmp_path):
        experiment = EXPERIMENTS[0]
        (tmp_path / experiment.artifact).write_text("MEASURED CONTENT")
        text = render_experiment(experiment, tmp_path)
        assert experiment.exp_id in text
        assert "MEASURED CONTENT" in text
        assert "```" in text

    def test_without_artifact(self, tmp_path):
        experiment = EXPERIMENTS[0]
        text = render_experiment(experiment, tmp_path)
        assert "not generated yet" in text

    def test_paper_values_listed(self, tmp_path):
        experiment = EXPERIMENTS[0]
        text = render_experiment(experiment, tmp_path)
        for value in experiment.paper_values:
            assert value in text


class TestGenerateMarkdown:
    def test_index_contains_all(self, tmp_path):
        text = generate_markdown(tmp_path)
        for experiment in EXPERIMENTS:
            assert experiment.exp_id in text

    def test_write(self, tmp_path):
        out = tmp_path / "EXP.md"
        path = write_experiments_md(out, tmp_path)
        assert path == out
        assert out.read_text().startswith("# EXPERIMENTS")

    def test_uses_real_results_when_present(self):
        results = Path("results")
        # The dir may hold benchmark-only artifacts (BENCH_*.json,
        # throughput tables); only the registered experiment artifacts
        # feed generate_markdown, so gate the check on those.
        generated = sum((results / e.artifact).exists()
                        for e in EXPERIMENTS)
        if generated < 2:
            pytest.skip("results/ experiment artifacts not generated")
        text = generate_markdown(results)
        # each present artifact should be embedded as a fenced block
        assert text.count("```") >= 2 * generated
