"""Study session tests: golden equivalence with the legacy pipeline,
stage keys, and artifact-cache round trips (warm, disk, cross-process).
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import characterization as chz
from repro.api import ArtifactStore, Study, build_table
from repro.config import HawkesConfig
from repro.core import fit_corpus
from repro.news.domains import NewsCategory
from repro.pipeline import influence_corpus
from repro.reporting.study import generate_study_report
from repro.synthesis.world import WorldConfig

GOLDEN_HAWKES = HawkesConfig(gibbs_iterations=30, gibbs_burn_in=10)
GOLDEN_MAX_URLS = 16

#: Small enough to build in ~a second; used by the disk/cross-process
#: tests that must construct worlds from scratch.
TINY_KWARGS = dict(seed=5, n_stories_alternative=40,
                   n_stories_mainstream=100, n_twitter_users=60,
                   n_reddit_users=50, n_generic_subreddits=10)


@pytest.fixture(scope="module")
def api_study(collected):
    return Study.from_data(collected, hawkes=GOLDEN_HAWKES,
                           fit_seed=0, max_urls=GOLDEN_MAX_URLS)


class TestGoldenEquivalence:
    """Study products must be byte/bit-identical to the legacy path."""

    def test_corpus_matches_pipeline(self, api_study, collected):
        legacy = influence_corpus(collected, max_urls=GOLDEN_MAX_URLS)
        assert api_study.corpus == legacy

    def test_fits_bit_identical(self, api_study, collected):
        legacy = fit_corpus(
            influence_corpus(collected, max_urls=GOLDEN_MAX_URLS),
            GOLDEN_HAWKES, rng=np.random.default_rng(0))
        result = api_study.influence()
        assert len(result.fits) == len(legacy.fits)
        for ours, theirs in zip(result.fits, legacy.fits):
            assert ours.url == theirs.url
            assert np.array_equal(ours.weights, theirs.weights)
            assert np.array_equal(ours.background, theirs.background)
            assert ours.log_likelihood == theirs.log_likelihood

    def test_table_rows_match_analysis_layer(self, api_study, collected):
        rows = chz.dataset_overview({
            "Twitter": collected.twitter,
            "Reddit (six selected subreddits)": collected.reddit_six,
            "Reddit (other subreddits)": collected.reddit_other,
            "4chan (/pol/)": collected.pol,
            "4chan (other boards)": collected.fourchan_other,
        })
        artifact = api_study.table(2)
        assert artifact.rows == tuple(
            (r.name, r.posts_with_urls, r.unique_alternative,
             r.unique_mainstream) for r in rows)

    def test_all_tables_match_direct_builders(self, api_study, collected):
        for table_id in range(1, 11):
            direct = build_table(table_id, collected)
            assert api_study.table(table_id).render() == direct.render()

    def test_table11_uses_study_fits(self, api_study):
        direct = build_table(11, api_study.data, api_study.influence())
        assert api_study.table(11).render() == direct.render()

    def test_report_bytes_match_legacy(self, api_study, collected):
        legacy = generate_study_report(
            collected, include_influence=True, max_urls=GOLDEN_MAX_URLS,
            seed=0)
        assert api_study.report() == legacy

    def test_report_without_influence_matches(self, api_study, collected):
        legacy = generate_study_report(collected, include_influence=False)
        assert api_study.report(include_influence=False) == legacy

    def test_deprecated_shims_delegate(self, collected):
        from repro.pipeline import fit_influence
        with pytest.warns(DeprecationWarning):
            shimmed = fit_influence(collected, GOLDEN_HAWKES, rng=0,
                                    max_urls=4)
        legacy = fit_corpus(influence_corpus(collected, max_urls=4),
                            GOLDEN_HAWKES, rng=0)
        for ours, theirs in zip(shimmed.fits, legacy.fits):
            assert np.array_equal(ours.weights, theirs.weights)


class TestStageKeys:
    def test_keys_cover_every_stage(self):
        study = Study(seed=3)
        keys = study.keys()
        assert set(keys) == set(study.stage_names())
        assert all(len(k) == 64 for k in keys.values())

    def test_same_config_same_keys(self):
        assert Study(seed=3).keys() == Study(seed=3).keys()

    def test_n_jobs_is_not_part_of_the_key(self):
        assert (Study(seed=3, n_jobs=1).stage_key("fits")
                == Study(seed=3, n_jobs=8).stage_key("fits"))

    def test_engine_is_not_part_of_the_key(self):
        # Like n_jobs, the engine is an execution knob (equivalent to
        # floating-point tolerance), so it must not split the cache.
        assert (Study(seed=3, method="em").stage_key("fits")
                == Study(seed=3, method="em",
                         engine="batched").stage_key("fits"))

    def test_batched_engine_requires_em(self):
        with pytest.raises(ValueError, match="method='em'"):
            Study(seed=3, engine="batched")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            Study(seed=3, method="em", engine="gpu")

    def test_config_changes_invalidate_downstream_only(self):
        base = Study(seed=3)
        refit = Study(seed=3, fit_seed=99)
        assert base.stage_key("corpus") == refit.stage_key("corpus")
        assert base.stage_key("fits") != refit.stage_key("fits")
        assert base.stage_key("table:2") == refit.stage_key("table:2")
        assert base.stage_key("table:11") != refit.stage_key("table:11")

    def test_world_seed_invalidates_everything(self):
        a, b = Study(seed=3), Study(seed=4)
        for name in a.stage_names():
            assert a.stage_key(name) != b.stage_key(name)

    def test_method_and_max_urls_change_fit_key(self):
        base = Study(seed=3)
        assert base.stage_key("fits") != Study(
            seed=3, method="em").stage_key("fits")
        assert base.stage_key("fits") != Study(
            seed=3, max_urls=10).stage_key("fits")

    def test_unseeded_fit_never_collides(self):
        a = Study(seed=3, fit_seed=None)
        b = Study(seed=3, fit_seed=None)
        assert a.stage_key("fits") != b.stage_key("fits")

    def test_generator_seed_equals_int_seed(self):
        assert (Study(seed=3, fit_seed=np.random.default_rng(7))
                .stage_key("fits")
                == Study(seed=3, fit_seed=7).stage_key("fits"))

    def test_errors(self):
        with pytest.raises(KeyError):
            Study(seed=3).stage_key("nope")
        with pytest.raises(KeyError):
            Study(seed=3).table(12)
        with pytest.raises(ValueError):
            Study(WorldConfig(seed=1), seed=2)
        with pytest.raises(ValueError):
            Study(seed=3, method="mcmc")


class TestWarmCache:
    def test_second_call_is_memoized(self, api_study):
        api_study.table(2)
        before = dict(api_study.stats)
        artifact = api_study.table(2)
        assert api_study.stats["computed"] == before["computed"]
        assert api_study.stats["memo_hits"] == before["memo_hits"] + 1
        assert artifact is api_study.table(2)

    def test_aggregates_reuse_fits(self, api_study):
        api_study.influence()
        computed = api_study.stats["computed"]
        api_study.corpus_summary()
        api_study.percentages(NewsCategory.ALTERNATIVE)
        # summary computes itself but never refits the corpus
        assert api_study.stats["computed"] <= computed + 1

    def test_disk_round_trip_skips_all_compute(self, tmp_path):
        cache = tmp_path / "cache"
        cold = Study(world=WorldConfig(**TINY_KWARGS), cache_dir=cache)
        cold_artifact = cold.table(2)
        assert cold.stats["computed"] >= 2  # world, data, table

        warm = Study(world=WorldConfig(**TINY_KWARGS), cache_dir=cache)
        warm_artifact = warm.table(2)
        assert warm.stats["computed"] == 0
        assert warm.stats["store_hits"] == 1  # table hit; deps untouched
        assert warm_artifact.render() == cold_artifact.render()

    def test_shared_store_object(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        a = Study(world=WorldConfig(**TINY_KWARGS), store=store)
        b = Study(world=WorldConfig(**TINY_KWARGS), store=store)
        a.table(2)
        b.table(2)
        assert b.stats["computed"] == 0


class TestCrossProcess:
    def test_warm_cache_across_processes(self, tmp_path):
        cache = tmp_path / "cache"
        src = Path(__file__).resolve().parent.parent / "src"
        script = (
            "from repro.api import Study\n"
            "from repro.synthesis.world import WorldConfig\n"
            f"study = Study(world=WorldConfig(**{TINY_KWARGS!r}), "
            f"cache_dir={str(cache)!r})\n"
            "print(study.table(2).render())\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = (str(src) + os.pathsep
                             + env.get("PYTHONPATH", ""))
        proc = subprocess.run([sys.executable, "-c", script], env=env,
                              capture_output=True, text=True, check=True)

        study = Study(world=WorldConfig(**TINY_KWARGS), cache_dir=cache)
        artifact = study.table(2)
        assert study.stats["computed"] == 0
        assert artifact.render() == proc.stdout.rstrip("\n")


class TestFromData:
    def test_preseeds_world_and_data(self, api_study, collected):
        assert api_study.data is collected
        assert api_study.world is collected.world

    def test_payloads_are_json_ready(self, api_study):
        import json
        payload = api_study.table(2).to_payload()
        encoded = json.dumps(payload)
        assert "Twitter" in encoded
        assert payload["table"] == 2
