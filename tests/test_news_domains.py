"""Tests for the 99-site news registry."""

import pytest

from repro.news.domains import (
    ALTERNATIVE_DOMAINS,
    MAINSTREAM_DOMAINS,
    NewsCategory,
    NewsDomain,
    NewsRegistry,
    REDDIT_ALT_SHARES,
    TWITTER_MAIN_SHARES,
    default_registry,
)


class TestRegistryComposition:
    def test_counts_match_paper(self):
        assert len(MAINSTREAM_DOMAINS) == 45
        assert len(ALTERNATIVE_DOMAINS) == 54

    def test_total_is_99(self):
        registry = default_registry()
        assert len(registry.domains) == 99

    def test_no_duplicates(self):
        names = [d.name for d in MAINSTREAM_DOMAINS + ALTERNATIVE_DOMAINS]
        assert len(names) == len(set(names))

    def test_state_sponsored_domains(self):
        registry = default_registry()
        sponsored = {d.name for d in registry.domains if d.state_sponsored}
        assert sponsored == {"rt.com", "sputniknews.com"}

    def test_key_alternative_outlets_present(self):
        names = {d.name for d in ALTERNATIVE_DOMAINS}
        for outlet in ("breitbart.com", "infowars.com", "rt.com",
                       "sputniknews.com", "beforeitsnews.com"):
            assert outlet in names

    def test_key_mainstream_outlets_present(self):
        names = {d.name for d in MAINSTREAM_DOMAINS}
        for outlet in ("nytimes.com", "cnn.com", "theguardian.com",
                       "bbc.com", "abcnews.go.com"):
            assert outlet in names

    def test_domain_validation_rejects_urls(self):
        with pytest.raises(ValueError):
            NewsDomain("http://breitbart.com", NewsCategory.ALTERNATIVE)


class TestLookup:
    def test_exact_match(self, registry):
        entry = registry.lookup("breitbart.com")
        assert entry is not None
        assert entry.category == NewsCategory.ALTERNATIVE

    def test_subdomain_match(self, registry):
        entry = registry.lookup("www.breitbart.com")
        assert entry is not None
        assert entry.name == "breitbart.com"

    def test_multi_label_domain(self, registry):
        entry = registry.lookup("abcnews.go.com")
        assert entry is not None
        assert entry.name == "abcnews.go.com"

    def test_go_com_alone_does_not_match(self, registry):
        assert registry.lookup("go.com") is None

    def test_unknown_domain(self, registry):
        assert registry.lookup("example.com") is None

    def test_case_insensitive(self, registry):
        assert registry.lookup("BREITBART.COM") is not None

    def test_trailing_dot(self, registry):
        assert registry.lookup("breitbart.com.") is not None

    def test_fake_abcnews_clone_is_alternative(self, registry):
        # abcnews.com.co was a notorious spoof of abcnews.go.com
        entry = registry.lookup("abcnews.com.co")
        assert entry is not None
        assert entry.category == NewsCategory.ALTERNATIVE

    def test_category_of(self, registry):
        assert registry.category_of("nytimes.com") == NewsCategory.MAINSTREAM
        assert registry.category_of("nope.example") is None


class TestCategorySlices:
    def test_mainstream_property(self, registry):
        assert len(registry.mainstream) == 45
        assert all(d.category == NewsCategory.MAINSTREAM
                   for d in registry.mainstream)

    def test_alternative_property(self, registry):
        assert len(registry.alternative) == 54

    def test_duplicate_registry_rejected(self):
        dupe = MAINSTREAM_DOMAINS + (MAINSTREAM_DOMAINS[0],)
        with pytest.raises(ValueError):
            NewsRegistry(domains=dupe)


class TestPopularityProfiles:
    @pytest.mark.parametrize("platform", ["reddit", "twitter", "pol"])
    @pytest.mark.parametrize("category", list(NewsCategory))
    def test_profiles_are_distributions(self, registry, platform, category):
        profile = registry.popularity_profile(platform, category)
        assert abs(sum(profile.values()) - 1.0) < 1e-9
        assert all(w >= 0 for w in profile.values())

    def test_profile_covers_whole_category(self, registry):
        profile = registry.popularity_profile(
            "reddit", NewsCategory.ALTERNATIVE)
        assert len(profile) == 54

    def test_breitbart_dominates_reddit_alt(self, registry):
        profile = registry.popularity_profile(
            "reddit", NewsCategory.ALTERNATIVE)
        assert profile["breitbart.com"] == max(profile.values())
        assert profile["breitbart.com"] > 0.5

    def test_guardian_tops_twitter_mainstream(self, registry):
        profile = registry.popularity_profile(
            "twitter", NewsCategory.MAINSTREAM)
        assert profile["theguardian.com"] == max(profile.values())

    def test_therealstrategy_twitter_specific(self, registry):
        # Figure 2: therealstrategy.com is popular only on Twitter.
        twitter = registry.popularity_profile(
            "twitter", NewsCategory.ALTERNATIVE)
        reddit = registry.popularity_profile(
            "reddit", NewsCategory.ALTERNATIVE)
        assert twitter["therealstrategy.com"] > 5 * reddit["therealstrategy.com"]

    def test_unknown_platform_raises(self, registry):
        with pytest.raises(KeyError):
            registry.popularity_profile("facebook", NewsCategory.MAINSTREAM)

    def test_share_tables_reference_registry_members(self, registry):
        names = {d.name for d in registry.domains}
        assert set(REDDIT_ALT_SHARES) <= names
        assert set(TWITTER_MAIN_SHARES) <= names
