"""Fault-tolerance unit tests: retry, quarantine, injection, recovery.

Each hardening layer is exercised in isolation against the seeded
fault injectors; the end-to-end chaos-equivalence property lives in
``tests/test_resilience_chaos.py``.
"""

import http.client
import json
import threading

import numpy as np
import pytest

from repro.api import Study, StudyService
from repro.api.store import ArtifactStore
from repro.collection.store import (
    DatasetRecord,
    MalformedRecordError,
    TruncatedRecordError,
    iter_jsonl,
)
from repro.config import HawkesConfig
from repro.parallel import parallel_map
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    Quarantine,
    RetryPolicy,
    SimulatedWorkerCrash,
    TransientFault,
    TransientSourceError,
    clear_worker_faults,
    corrupt_object,
    count_quarantined,
    install_worker_faults,
    retry_call,
    supervised_source,
    validate_record,
)


def _record(post_id="p1", created_at=100.0):
    return DatasetRecord(post_id=post_id, platform="twitter",
                         community="Twitter", author_id="u1",
                         created_at=created_at, urls=())


# ---------------------------------------------------------------------------
# RetryPolicy / retry_call
# ---------------------------------------------------------------------------

class TestRetry:
    def test_backoff_schedule_is_deterministic(self):
        policy = RetryPolicy(max_retries=4, backoff_base=0.1,
                             backoff_factor=2.0, backoff_max=0.5)
        assert policy.delays() == (0.1, 0.2, 0.4, 0.5)
        assert policy.delays() == policy.delays()

    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}
        slept = []

        def flaky():
            calls["n"] += 1
            if calls["n"] <= 2:
                raise TransientSourceError("hiccup")
            return "ok"

        result = retry_call(flaky, policy=RetryPolicy(max_retries=3),
                            sleep=slept.append)
        assert result == "ok"
        assert calls["n"] == 3
        assert slept == [0.05, 0.1]

    def test_exhausted_retries_reraise_last(self):
        def always():
            raise TransientSourceError("down")

        with pytest.raises(TransientSourceError):
            retry_call(always, policy=RetryPolicy(max_retries=2),
                       sleep=lambda s: None)

    def test_non_transient_propagates_immediately(self):
        calls = {"n": 0}

        def boom():
            calls["n"] += 1
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            retry_call(boom, sleep=lambda s: None)
        assert calls["n"] == 1


# ---------------------------------------------------------------------------
# Quarantine
# ---------------------------------------------------------------------------

class TestQuarantine:
    def test_sidecar_jsonl_one_line_per_entry(self, tmp_path):
        path = tmp_path / "dead" / "q.jsonl"
        with Quarantine(path) as sink:
            sink.add("twitter", "not a DatasetRecord (dict)", {"bad": 1})
            sink.add("reddit", "out of order (5.0 after 9.0)", _record())
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 2
        assert lines[0]["source"] == "twitter"
        assert lines[0]["payload"] == {"bad": 1}
        assert lines[1]["payload"]["post_id"] == "p1"
        assert count_quarantined(path) == 2
        assert count_quarantined(tmp_path / "missing.jsonl") == 0

    def test_by_reason_groups_by_family(self):
        sink = Quarantine()
        sink.add("s", "out of order (1.0 after 2.0)")
        sink.add("s", "out of order (3.0 after 4.0)")
        sink.add("s", "not a DatasetRecord (dict)")
        assert sink.by_reason() == {"out of order": 2,
                                    "not a DatasetRecord": 1}
        assert sink.count == 3

    def test_unserializable_payload_never_raises(self):
        sink = Quarantine()
        sink.add("s", "weird", object())
        assert sink.count == 1


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        a = FaultPlan(42).source("twitter")
        b = FaultPlan(42).source("twitter")
        assert a.error_positions == b.error_positions
        assert a.malformed_positions == b.malformed_positions

    def test_sites_are_independent(self):
        plan = FaultPlan(42)
        assert (plan.source("twitter").error_positions
                != plan.source("reddit").error_positions)

    def test_source_is_memoized_for_restart_reuse(self):
        plan = FaultPlan(1)
        assert plan.source("x") is plan.source("x")

    def test_wrap_fires_each_fault_once(self):
        spec = FaultSpec(transient_errors=1, malformed_records=1,
                         horizon=10)
        faults = FaultPlan(0, spec).source("s")
        records = [_record(f"p{i}", float(i)) for i in range(12)]

        first_pass = []
        with pytest.raises(TransientSourceError):
            for item in faults.wrap(iter(records)):
                first_pass.append(item)
        # The error never re-fires; the malformed record fires exactly
        # once across however many replays it takes.
        second = list(faults.wrap(iter(records)))
        third = list(faults.wrap(iter(records)))
        assert third == records
        injected = [item for item in first_pass + second
                    if isinstance(item, dict)]
        assert len(injected) == 1
        assert [item for item in second if not isinstance(item, dict)] \
            == records

    def test_failing_calls_predicate(self):
        should_fail = FaultPlan(0).failing_calls("handler", failures=2)
        assert [should_fail() for _ in range(4)] == [True, True,
                                                     False, False]


# ---------------------------------------------------------------------------
# Supervised sources
# ---------------------------------------------------------------------------

class TestSupervisedSource:
    def test_validate_record(self):
        assert validate_record(_record()) is None
        assert "not a DatasetRecord" in validate_record({"nope": 1})
        assert "non-finite" in validate_record(
            _record(created_at=float("nan")))

    def test_clean_stream_passes_through_unchanged(self):
        records = [_record(f"p{i}", float(i)) for i in range(20)]
        out = list(supervised_source("s", lambda: iter(records),
                                     sleep=lambda s: None))
        assert out == records

    def test_restart_replays_to_bit_identical_sequence(self):
        records = [_record(f"p{i}", float(i)) for i in range(50)]
        spec = FaultSpec(transient_errors=2, malformed_records=2,
                         horizon=40)
        faults = FaultPlan(7, spec).source("s")
        sink = Quarantine()
        out = list(supervised_source(
            "s", lambda: faults.wrap(iter(records)),
            quarantine=sink, sleep=lambda s: None))
        assert out == records
        assert sink.by_reason() == {
            "not a DatasetRecord": len(faults.malformed_positions)}

    def test_exhausted_restarts_end_source_not_run(self):
        def dead_factory():
            raise TransientSourceError("always down")
            yield  # pragma: no cover

        sink = Quarantine()
        out = list(supervised_source(
            "s", dead_factory, policy=RetryPolicy(max_retries=2),
            quarantine=sink, sleep=lambda s: None))
        assert out == []
        assert sink.count == 1  # one dead-letter log entry, no crash

    def test_out_of_order_records_are_quarantined(self):
        records = [_record("a", 10.0), _record("b", 5.0),
                   _record("c", 11.0)]
        sink = Quarantine()
        out = list(supervised_source("s", lambda: iter(records),
                                     quarantine=sink,
                                     sleep=lambda s: None))
        assert [r.post_id for r in out] == ["a", "c"]
        assert sink.by_reason() == {"out of order": 1}


# ---------------------------------------------------------------------------
# iter_jsonl malformed/truncated handling
# ---------------------------------------------------------------------------

class TestIterJsonl:
    def _write(self, path, lines, final_newline=True):
        text = "\n".join(lines) + ("\n" if final_newline else "")
        path.write_text(text, encoding="utf-8")

    def test_truncated_final_line_raises_sharp_error(self, tmp_path):
        path = tmp_path / "data.jsonl"
        good = _record("p0", 1.0).to_json()
        self._write(path, [good, good[: len(good) // 2]],
                    final_newline=False)
        with pytest.raises(TruncatedRecordError) as excinfo:
            list(iter_jsonl(path))
        assert "data.jsonl:2" in str(excinfo.value)

    def test_malformed_mid_file_names_path_and_line(self, tmp_path):
        path = tmp_path / "data.jsonl"
        self._write(path, [_record("p0", 1.0).to_json(),
                           '{"post_id": "only"}',
                           _record("p2", 3.0).to_json()])
        with pytest.raises(MalformedRecordError) as excinfo:
            list(iter_jsonl(path))
        assert not isinstance(excinfo.value, TruncatedRecordError)
        assert "data.jsonl:2" in str(excinfo.value)

    def test_skip_mode_continues_past_bad_lines(self, tmp_path):
        path = tmp_path / "data.jsonl"
        self._write(path, [_record("p0", 1.0).to_json(),
                           "not json at all",
                           _record("p2", 3.0).to_json()])
        out = list(iter_jsonl(path, on_malformed="skip"))
        assert [r.post_id for r in out] == ["p0", "p2"]

    def test_unknown_mode_rejected(self, tmp_path):
        path = tmp_path / "data.jsonl"
        self._write(path, [_record("p0", 1.0).to_json()])
        with pytest.raises(ValueError):
            list(iter_jsonl(path, on_malformed="ignore"))

    def test_clean_file_unchanged(self, tmp_path):
        path = tmp_path / "data.jsonl"
        records = [_record(f"p{i}", float(i)) for i in range(5)]
        self._write(path, [r.to_json() for r in records])
        assert list(iter_jsonl(path)) == records


# ---------------------------------------------------------------------------
# ArtifactStore integrity
# ---------------------------------------------------------------------------

class TestStoreIntegrity:
    def test_corrupt_object_quarantined_and_recomputed(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("k" * 64, {"value": np.arange(5)})
        store._mem.clear()  # force the disk layer
        corrupt_object(store, "k" * 64)
        assert store.get("k" * 64) is None  # detected -> miss
        quarantined = list((tmp_path / "quarantine").iterdir())
        assert len(quarantined) == 1
        # The slot is writable again and a rewrite round-trips.
        store.put("k" * 64, {"value": np.arange(5)})
        store._mem.clear()
        assert np.array_equal(store.get("k" * 64)["value"], np.arange(5))

    def test_legacy_unframed_blob_still_loads(self, tmp_path):
        import pickle
        store = ArtifactStore(tmp_path)
        path = store._object_path("a" * 64)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps({"legacy": True}))
        assert store.get("a" * 64) == {"legacy": True}


# ---------------------------------------------------------------------------
# parallel_map fault tolerance
# ---------------------------------------------------------------------------

def _double(x):
    return x * 2


@pytest.fixture
def worker_faults(tmp_path):
    """Arm worker-fault injection and always disarm afterwards."""
    def arm(crashes, mode):
        install_worker_faults(tmp_path / "faults", crashes=crashes,
                              mode=mode)
    yield arm
    clear_worker_faults()


class TestParallelMapFaults:
    def test_serial_transient_retry(self):
        calls = {"n": 0}

        def flaky(x):
            calls["n"] += 1
            if calls["n"] == 2:
                raise SimulatedWorkerCrash("one-shot")
            return x * 2

        assert parallel_map(flaky, [1, 2, 3], n_jobs=1) == [2, 4, 6]

    def test_serial_retries_exhausted_raise(self):
        def always(x):
            raise SimulatedWorkerCrash("stuck")

        with pytest.raises(TransientFault):
            parallel_map(always, [1], n_jobs=1, retries=1)

    def test_chunk_retry_preserves_results(self, worker_faults):
        worker_faults(crashes=1, mode="raise")
        out = parallel_map(_double, list(range(40)), n_jobs=2,
                           chunk_size=5)
        assert out == [x * 2 for x in range(40)]

    def test_pool_respawn_after_worker_exit(self, worker_faults):
        worker_faults(crashes=1, mode="exit")
        out = parallel_map(_double, list(range(40)), n_jobs=2,
                           chunk_size=5)
        assert out == [x * 2 for x in range(40)]

    def test_survives_repeated_pool_breakage(self, worker_faults):
        # Two exit-mode crashes can break the pool twice, pushing the
        # map into the serial fallback; by then every crash slot is
        # claimed, so the in-process finish is safe.  (If one pool
        # absorbs both crashes the respawn completes instead — either
        # path must produce the full, ordered result.)
        worker_faults(crashes=2, mode="exit")
        out = parallel_map(_double, list(range(40)), n_jobs=2,
                           chunk_size=5)
        assert out == [x * 2 for x in range(40)]

    def test_retries_zero_restores_fail_fast(self, worker_faults):
        worker_faults(crashes=1, mode="raise")
        with pytest.raises(TransientFault):
            parallel_map(_double, list(range(40)), n_jobs=2,
                         chunk_size=5, retries=0)


# ---------------------------------------------------------------------------
# Service: stale-while-revalidate, degraded health, graceful drain
# ---------------------------------------------------------------------------

def _http_get(port, path):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


@pytest.fixture
def fresh_service(collected):
    study = Study.from_data(
        collected, hawkes=HawkesConfig(gibbs_iterations=12, gibbs_burn_in=4),
        fit_seed=0, max_urls=6)
    service = StudyService(study, port=0)
    thread = threading.Thread(target=service.serve_forever, daemon=True)
    thread.start()
    yield service
    try:
        service.shutdown()
        service.close()
    except OSError:
        pass
    thread.join(timeout=5)


class TestServiceResilience:
    def test_stale_while_revalidate_and_degraded_health(
            self, fresh_service, monkeypatch):
        service = fresh_service
        status, headers, body = _http_get(service.port, "/tables/2")
        assert status == 200 and "Warning" not in headers
        good = json.loads(body)

        # Next build cycle: the etag moves but the rebuild blows up.
        monkeypatch.setattr(service.study, "etag",
                            lambda name: '"forced-fresh"')
        monkeypatch.setattr(
            service.study, "table",
            lambda table_id: (_ for _ in ()).throw(
                RuntimeError("backing store on fire")))
        status, headers, body = _http_get(service.port, "/tables/2")
        assert status == 200
        assert headers["Warning"].startswith("110")
        assert json.loads(body) == good  # last-good bytes

        status, _, body = _http_get(service.port, "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "degraded"
        assert "table:2" in health["degraded"]

        # Recovery: a clean rebuild clears the degraded flag.
        monkeypatch.undo()
        status, headers, _ = _http_get(service.port, "/tables/2")
        assert status == 200 and "Warning" not in headers
        status, _, body = _http_get(service.port, "/healthz")
        assert json.loads(body)["status"] == "ok"

    def test_failure_with_no_last_good_is_a_500(self, fresh_service,
                                                monkeypatch):
        service = fresh_service
        monkeypatch.setattr(
            service.study, "table",
            lambda table_id: (_ for _ in ()).throw(
                RuntimeError("cold failure")))
        status, _, body = _http_get(service.port, "/tables/3")
        assert status == 500
        assert "cold failure" in json.loads(body)["error"]

    def test_drain_finishes_and_closes_socket(self, collected):
        study = Study.from_data(
            collected,
            hawkes=HawkesConfig(gibbs_iterations=12, gibbs_burn_in=4),
            fit_seed=0, max_urls=6)
        service = StudyService(study, port=0)
        thread = threading.Thread(target=service.serve_forever,
                                  daemon=True)
        thread.start()
        port = service.port
        status, _, _ = _http_get(port, "/healthz")
        assert status == 200
        assert service.drain(timeout=5.0) is True
        thread.join(timeout=5)
        assert not thread.is_alive()
        with pytest.raises(OSError):
            _http_get(port, "/healthz")


# ---------------------------------------------------------------------------
# CLI error contract
# ---------------------------------------------------------------------------

class TestCliErrors:
    def test_one_line_error_and_exit_1(self, capsys):
        from repro import cli
        rc = cli.main(["live", "--replay", "/nonexistent/data.jsonl",
                       "--skip-refit"])
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1

    def test_vv_reraises_for_traceback(self):
        from repro import cli
        with pytest.raises(FileNotFoundError):
            cli.main(["-vv", "live", "--replay",
                      "/nonexistent/data.jsonl", "--skip-refit"])
