"""Tests for Gibbs and EM inference, including parameter recovery."""

import numpy as np
import pytest

from repro.core.events import DiscreteEvents
from repro.core.hawkes.basis import DirichletLagBasis, LogBinnedLagBasis
from repro.core.hawkes.inference import Priors, _ParentStructure, fit_em, fit_gibbs
from repro.core.hawkes.model import HawkesParams
from repro.core.hawkes.simulation import simulate_branching


def make_true_params(k=2, max_lag=20, seed=0):
    rng = np.random.default_rng(seed)
    weights = np.array([[0.35, 0.15], [0.05, 0.30]])[:k, :k]
    pmf = np.exp(-np.arange(1, max_lag + 1) / 5.0)
    pmf /= pmf.sum()
    return HawkesParams(
        background=np.array([0.01, 0.006])[:k],
        weights=weights,
        impulse=np.tile(pmf, (k, k, 1)),
    )


@pytest.fixture(scope="module")
def simulated():
    params = make_true_params()
    rng = np.random.default_rng(99)
    events = simulate_branching(params, 40_000, rng)
    return params, events


class TestPriors:
    def test_defaults_positive(self):
        priors = Priors()
        assert priors.background_rate > 0

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            Priors(weight_rate=0.0)


class TestParentStructure:
    def test_candidates_within_window(self):
        events = DiscreteEvents.from_pairs(
            [(0, 0), (3, 0), (10, 1), (100, 0)], n_bins=200, n_processes=2)
        structure = _ParentStructure(events, DirichletLagBasis(20))
        # entry 0 (bin 0) has no candidates
        assert len(structure.cand_src[0]) == 0
        # entry 1 (bin 3) sees only bin 0
        assert list(structure.cand_lag[1]) == [3]
        # entry 2 (bin 10) sees bins 0 and 3
        assert sorted(structure.cand_lag[2]) == [7, 10]
        # entry 3 (bin 100) sees nothing within 20 bins
        assert len(structure.cand_src[3]) == 0

    def test_exposure_truncation(self):
        events = DiscreteEvents.from_pairs(
            [(95, 0)], n_bins=100, n_processes=1)
        basis = DirichletLagBasis(10)
        structure = _ParentStructure(events, basis)
        pmf = np.full((1, 1, 10), 0.1)
        cdf = np.cumsum(pmf, axis=2)
        # only lags 1..4 fit before the window ends
        assert structure.exposure(cdf)[0, 0] == pytest.approx(0.4)

    def test_exposure_counts_multiplicity(self):
        events = DiscreteEvents.from_pairs(
            [(0, 0), (0, 0)], n_bins=100, n_processes=1)
        basis = DirichletLagBasis(10)
        structure = _ParentStructure(events, basis)
        cdf = np.cumsum(np.full((1, 1, 10), 0.1), axis=2)
        assert structure.exposure(cdf)[0, 0] == pytest.approx(2.0)


class TestGibbs:
    def test_recovers_background(self, simulated):
        params, events = simulated
        result = fit_gibbs(events, params.max_lag, n_iterations=80,
                           burn_in=30, rng=np.random.default_rng(1))
        assert np.allclose(result.background, params.background,
                           rtol=0.5, atol=0.004)

    def test_recovers_weights(self, simulated):
        params, events = simulated
        result = fit_gibbs(events, params.max_lag, n_iterations=80,
                           burn_in=30, rng=np.random.default_rng(2))
        # diagonal (strong) weights within 40%
        for k in range(2):
            assert result.weights[k, k] == pytest.approx(
                params.weights[k, k], rel=0.4)
        # weak cross weight estimated below the strong ones
        assert result.weights[1, 0] < result.weights[0, 0]

    def test_weight_samples_shape(self, simulated):
        _, events = simulated
        result = fit_gibbs(events, 20, n_iterations=30, burn_in=10,
                           rng=np.random.default_rng(3))
        assert result.weight_samples.shape == (20, 2, 2)

    def test_keep_samples_false(self, simulated):
        _, events = simulated
        result = fit_gibbs(events, 20, n_iterations=20, burn_in=5,
                           rng=np.random.default_rng(4),
                           keep_samples=False)
        assert result.weight_samples.size == 0

    def test_burn_in_validation(self, simulated):
        _, events = simulated
        with pytest.raises(ValueError):
            fit_gibbs(events, 20, n_iterations=10, burn_in=10)

    def test_mismatched_basis_rejected(self, simulated):
        _, events = simulated
        with pytest.raises(ValueError):
            fit_gibbs(events, 20, basis=LogBinnedLagBasis(30))

    def test_empty_events_returns_prior(self):
        events = DiscreteEvents.from_pairs([], n_bins=1000, n_processes=2)
        result = fit_gibbs(events, 20, n_iterations=20, burn_in=5,
                           rng=np.random.default_rng(5))
        # posterior ~ prior: background near shape/(rate + T)
        assert np.all(result.background < 0.01)
        assert np.all(result.weights < 0.3)

    def test_deterministic_given_rng(self, simulated):
        _, events = simulated
        a = fit_gibbs(events, 20, n_iterations=15, burn_in=5,
                      rng=np.random.default_rng(7))
        b = fit_gibbs(events, 20, n_iterations=15, burn_in=5,
                      rng=np.random.default_rng(7))
        assert np.allclose(a.weights, b.weights)
        assert np.allclose(a.background, b.background)


class TestEm:
    def test_recovers_weights(self, simulated):
        params, events = simulated
        result = fit_em(events, params.max_lag)
        for k in range(2):
            assert result.weights[k, k] == pytest.approx(
                params.weights[k, k], rel=0.4)

    def test_monotone_convergence_reported(self, simulated):
        params, events = simulated
        result = fit_em(events, params.max_lag, max_iterations=100)
        assert result.n_iterations <= 100
        assert np.isfinite(result.log_likelihood)

    def test_agrees_with_gibbs(self, simulated):
        params, events = simulated
        em = fit_em(events, params.max_lag)
        gibbs = fit_gibbs(events, params.max_lag, n_iterations=80,
                          burn_in=30, rng=np.random.default_rng(11))
        assert np.allclose(em.weights, gibbs.weights, atol=0.08)
        assert np.allclose(em.background, gibbs.background,
                           rtol=0.6, atol=0.004)

    def test_em_beats_null_model(self, simulated):
        from repro.core.hawkes.model import discrete_log_likelihood
        params, events = simulated
        result = fit_em(events, params.max_lag)
        null = HawkesParams(
            background=events.events_per_process() / events.n_bins,
            weights=np.zeros((2, 2)),
            impulse=np.tile(np.full(20, 0.05), (2, 2, 1)))
        assert result.log_likelihood > discrete_log_likelihood(null, events)

    def test_empty_events(self):
        events = DiscreteEvents.from_pairs([], n_bins=500, n_processes=3)
        result = fit_em(events, 10)
        assert result.params.n_processes == 3
        assert np.all(result.weights >= 0)


class TestPriorInfluence:
    def test_tighter_weight_prior_shrinks_estimates(self, simulated):
        _, events = simulated
        loose = fit_em(events, 20, priors=Priors(weight_rate=1.0))
        tight = fit_em(events, 20, priors=Priors(weight_rate=500.0))
        assert tight.weights.sum() < loose.weights.sum()

    def test_background_prior_dominates_empty_data(self):
        events = DiscreteEvents.from_pairs([], n_bins=100, n_processes=1)
        priors = Priors(background_shape=2.0, background_rate=100.0)
        result = fit_em(events, 10, priors=priors)
        # MAP = (shape - 1 + 0) / (rate + T) = 1/200
        assert result.background[0] == pytest.approx(1 / 200, rel=1e-6)
