"""Shared fixtures: a small deterministic world and its collected data.

World generation and collection are the expensive steps, so they are
session-scoped; tests must treat them as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.news.domains import default_registry
from repro.pipeline import CollectedData, collect, influence_cascades
from repro.synthesis.world import WorldConfig, build_world


SMALL_CONFIG = WorldConfig(
    seed=11,
    n_stories_alternative=220,
    n_stories_mainstream=650,
    n_twitter_users=250,
    n_reddit_users=200,
    n_generic_subreddits=30,
)


@pytest.fixture(scope="session")
def registry():
    return default_registry()


@pytest.fixture(scope="session")
def small_world():
    return build_world(SMALL_CONFIG)


@pytest.fixture(scope="session")
def collected(small_world) -> CollectedData:
    return collect(small_world)


@pytest.fixture(scope="session")
def cascades(collected):
    return influence_cascades(collected)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
