"""Tests for corpus-level influence estimation (Section 5 pipeline)."""

import numpy as np
import pytest

from repro.config import HAWKES_PROCESSES, HawkesConfig, TWITTER_GAPS
from repro.core.influence import (
    UrlCascade,
    aggregate_weights,
    cascade_to_events,
    corpus_background_rates,
    fit_corpus,
    influence_percentages,
    select_urls,
    trim_gap_urls,
)
from repro.news.domains import NewsCategory
from repro.timeutil import Interval

ALT = NewsCategory.ALTERNATIVE
MAIN = NewsCategory.MAINSTREAM


def cascade(url, events, category=ALT):
    return UrlCascade(url=url, category=category, events=tuple(events))


def triple_cascade(url, t0=0.0, category=ALT):
    return cascade(url, [(t0, "Twitter"), (t0 + 120, "/pol/"),
                         (t0 + 300, "The_Donald")], category)


class TestSelectUrls:
    def test_triple_platform_kept(self):
        kept = select_urls([triple_cascade("u1")])
        assert len(kept) == 1

    def test_missing_twitter_dropped(self):
        c = cascade("u", [(0, "/pol/"), (60, "politics")])
        assert select_urls([c]) == []

    def test_missing_pol_dropped(self):
        c = cascade("u", [(0, "Twitter"), (60, "politics")])
        assert select_urls([c]) == []

    def test_missing_subreddit_dropped(self):
        c = cascade("u", [(0, "Twitter"), (60, "/pol/")])
        assert select_urls([c]) == []

    def test_any_of_six_subreddits_counts(self):
        for sub in ("The_Donald", "worldnews", "politics", "news",
                    "conspiracy", "AskReddit"):
            c = cascade("u", [(0, "Twitter"), (60, "/pol/"), (120, sub)])
            assert len(select_urls([c])) == 1

    def test_foreign_communities_stripped(self):
        c = cascade("u", [(0, "Twitter"), (60, "/pol/"),
                          (120, "politics"), (180, "Reddit-other")])
        kept = select_urls([c])
        assert len(kept) == 1
        assert all(name != "Reddit-other" for _, name in kept[0].events)


class TestTrimGapUrls:
    def test_no_overlap_keeps_all(self):
        gaps = [Interval(10_000, 20_000)]
        cascades = [triple_cascade("u1", t0=0.0),
                    triple_cascade("u2", t0=30_000.0)]
        assert len(trim_gap_urls(cascades, gaps, 0.5)) == 2

    def test_drops_shortest_overlapping(self):
        gaps = [Interval(0, 1_000_000)]
        short = triple_cascade("short", t0=0.0)         # ~300 s span
        long_events = [(0.0, "Twitter"), (500_000.0, "/pol/"),
                       (900_000.0, "politics")]
        long = cascade("long", long_events)
        kept = trim_gap_urls([short, long], gaps, 0.5)
        assert [c.url for c in kept] == ["long"]

    def test_zero_fraction_keeps_all(self):
        gaps = [Interval(0, 10**9)]
        cascades = [triple_cascade(f"u{i}") for i in range(5)]
        assert len(trim_gap_urls(cascades, gaps, 0.0)) == 5

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            trim_gap_urls([], TWITTER_GAPS, 1.5)

    def test_rounding_of_drop_count(self):
        gaps = [Interval(0, 10**9)]
        cascades = [triple_cascade(f"u{i}", t0=float(i)) for i in range(10)]
        kept = trim_gap_urls(cascades, gaps, 0.10)
        assert len(kept) == 9


class TestCascadeToEvents:
    def test_processes_indexed_canonically(self):
        c = triple_cascade("u")
        events = cascade_to_events(c)
        assert events.n_processes == 8
        present = {HAWKES_PROCESSES[int(p)] for p in events.processes}
        assert present == {"Twitter", "/pol/", "The_Donald"}

    def test_minute_binning(self):
        c = cascade("u", [(0.0, "Twitter"), (59.0, "Twitter"),
                          (61.0, "/pol/")])
        events = cascade_to_events(c)
        assert events.n_bins == 2
        assert events.total_events == 3


class TestFitCorpusAndAggregation:
    @pytest.fixture(scope="class")
    def fitted(self):
        rng = np.random.default_rng(5)
        cascades = []
        for i in range(12):
            t0 = float(i) * 1e6
            cat = ALT if i % 2 else MAIN
            events = [(t0, "Twitter"), (t0 + 60, "Twitter"),
                      (t0 + 180, "/pol/"), (t0 + 600, "The_Donald"),
                      (t0 + 4000, "politics")]
            cascades.append(cascade(f"u{i}", events, cat))
        config = HawkesConfig(gibbs_iterations=30, gibbs_burn_in=10)
        return fit_corpus(cascades, config, rng=rng)

    def test_fit_count(self, fitted):
        assert len(fitted.fits) == 12

    def test_event_counts_recorded(self, fitted):
        for fit in fitted.fits:
            assert fit.event_counts.sum() == 5

    def test_weight_stack_shapes(self, fitted):
        assert fitted.weight_stack(ALT).shape == (6, 8, 8)
        assert fitted.weight_stack(MAIN).shape == (6, 8, 8)

    def test_aggregate_weights(self, fitted):
        agg = aggregate_weights(fitted)
        assert agg.mean_alternative.shape == (8, 8)
        assert np.all(agg.ks_pvalues >= 0)
        assert np.all(agg.ks_pvalues <= 1)
        stars = agg.significance_stars()
        assert stars.shape == (8, 8)
        assert set(np.unique(stars)) <= {"", "*", "**"}

    def test_influence_percentages_bounded(self, fitted):
        pct = influence_percentages(fitted, ALT)
        assert pct.shape == (8, 8)
        assert np.all(pct >= 0)
        # zero-event destinations yield zero percentage
        zero_dest = np.where(
            sum(f.event_counts for f in fitted.of_category(ALT)) == 0)[0]
        assert np.all(pct[:, zero_dest] == 0)

    def test_corpus_summary(self, fitted):
        summary = corpus_background_rates(fitted)
        assert summary.processes == HAWKES_PROCESSES
        # 6 URLs per category, each with Twitter events
        twitter_idx = HAWKES_PROCESSES.index("Twitter")
        assert summary.urls[ALT][twitter_idx] == 6
        assert summary.events[ALT][twitter_idx] == 12  # 2 per URL
        assert np.all(summary.mean_background[ALT] >= 0)

    def test_em_method(self):
        cascades = [triple_cascade(f"u{i}", t0=float(i) * 1e5)
                    for i in range(3)]
        result = fit_corpus(cascades, HawkesConfig(), method="em")
        assert len(result.fits) == 3

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            fit_corpus([triple_cascade("u")], HawkesConfig(),
                       method="variational")

    def test_aggregate_requires_both_categories(self):
        result = fit_corpus([triple_cascade("u", category=ALT)],
                            HawkesConfig(gibbs_iterations=10,
                                         gibbs_burn_in=3),
                            rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            aggregate_weights(result)


def make_fit(url, category, *, weights=None, background=None,
             event_counts=None):
    from repro.core.influence import UrlFit
    k = len(HAWKES_PROCESSES)
    return UrlFit(
        url=url, category=category,
        background=np.zeros(k) if background is None else background,
        weights=np.zeros((k, k)) if weights is None else weights,
        event_counts=(np.zeros(k, dtype=np.int64) if event_counts is None
                      else event_counts),
        n_bins=100, log_likelihood=0.0)


class TestBackgroundRatePresenceConditioning:
    """Table 11 regression: mean lambda0 averages present URLs only."""

    def test_absent_process_excluded_from_mean(self):
        from repro.core.influence import InfluenceResult
        k = len(HAWKES_PROCESSES)
        pol = HAWKES_PROCESSES.index("/pol/")
        # URL A: /pol/ posted, fitted lambda0 = 0.3.  URL B: /pol/
        # absent (0 events), EM leaves lambda0 near the prior mean.
        bg_a = np.full(k, 0.1)
        bg_a[pol] = 0.3
        counts_a = np.ones(k, dtype=np.int64)
        bg_b = np.full(k, 0.1)
        bg_b[pol] = 0.01  # prior-driven value for an absent process
        counts_b = np.ones(k, dtype=np.int64)
        counts_b[pol] = 0
        result = InfluenceResult(processes=HAWKES_PROCESSES, fits=[
            make_fit("a", ALT, background=bg_a, event_counts=counts_a),
            make_fit("b", ALT, background=bg_b, event_counts=counts_b),
        ])
        summary = corpus_background_rates(result)
        # Present-only mean: 0.3 from one URL, not (0.3 + 0.01) / 2.
        assert summary.mean_background[ALT][pol] == pytest.approx(0.3)
        assert summary.urls[ALT][pol] == 1
        # Processes present in both URLs still average over both.
        other = HAWKES_PROCESSES.index("Twitter")
        assert summary.mean_background[ALT][other] == pytest.approx(0.1)

    def test_never_present_process_reports_zero(self):
        from repro.core.influence import InfluenceResult
        k = len(HAWKES_PROCESSES)
        counts = np.zeros(k, dtype=np.int64)
        counts[0] = 3
        result = InfluenceResult(processes=HAWKES_PROCESSES, fits=[
            make_fit("a", ALT, background=np.full(k, 0.2),
                     event_counts=counts)])
        summary = corpus_background_rates(result)
        absent = summary.mean_background[ALT][1:]
        assert np.all(absent == 0.0)
        assert summary.mean_background[ALT][0] == pytest.approx(0.2)


class TestPercentChangeMasking:
    """Figure 10 regression: undefined ratio cells are NaN, never Inf."""

    @staticmethod
    def _result_with_zero_mainstream_cell():
        from repro.core.influence import InfluenceResult
        k = len(HAWKES_PROCESSES)
        w_alt = np.full((k, k), 0.2)
        w_main = np.full((k, k), 0.1)
        w_main[0, 0] = 0.0  # mainstream mean zero, alternative nonzero
        w_alt[1, 1] = 0.0
        w_main[1, 1] = 0.0  # both zero: 0/0
        return InfluenceResult(processes=HAWKES_PROCESSES, fits=[
            make_fit("a", ALT, weights=w_alt),
            make_fit("m", MAIN, weights=w_main),
        ])

    def test_non_finite_cells_become_nan(self):
        agg = aggregate_weights(self._result_with_zero_mainstream_cell())
        assert np.isnan(agg.percent_change[0, 0])  # x/0 was +Inf
        assert np.isnan(agg.percent_change[1, 1])  # 0/0 was NaN
        finite = agg.percent_change[np.isfinite(agg.percent_change)]
        assert np.all(finite == pytest.approx(100.0))
        assert not np.isinf(agg.percent_change).any()

    def test_masked_cells_serialize_as_null(self):
        from repro.api.serialize import influence_payload
        payload = influence_payload(self._result_with_zero_mainstream_cell())
        change = payload["percent_change"]
        assert change[0][0] is None
        assert change[1][1] is None
        assert change[0][1] == pytest.approx(100.0)


class TestInfluencePercentageFormula:
    def test_hand_computed(self):
        from repro.core.influence import InfluenceResult, UrlFit
        k = len(HAWKES_PROCESSES)
        weights = np.zeros((k, k))
        weights[7, 6] = 0.5  # Twitter -> /pol/
        counts = np.zeros(k, dtype=np.int64)
        counts[7] = 10  # Twitter events
        counts[6] = 5   # /pol/ events
        fit = UrlFit(url="u", category=ALT, background=np.zeros(k),
                     weights=weights, event_counts=counts, n_bins=100,
                     log_likelihood=0.0)
        result = InfluenceResult(processes=HAWKES_PROCESSES, fits=[fit])
        pct = influence_percentages(result, ALT)
        # 0.5 * 10 / 5 = 100%
        assert pct[7, 6] == pytest.approx(100.0)
