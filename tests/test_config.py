"""Tests for the study configuration constants."""

import pytest

from repro.config import (
    FOURCHAN_GAPS,
    HAWKES_PROCESSES,
    HawkesConfig,
    PLATFORM_CODES,
    SELECTED_SUBREDDITS,
    SEQUENCE_PLATFORMS,
    STUDY_END,
    STUDY_START,
    STUDY_WINDOW,
    StudyConfig,
    TWITTER_GAPS,
)
from repro.timeutil import SECONDS_PER_DAY, utc


class TestStudyWindow:
    def test_window_bounds(self):
        assert STUDY_START == utc(2016, 6, 30)
        assert STUDY_END == utc(2017, 3, 1)

    def test_window_spans_eight_months(self):
        days = (STUDY_END - STUDY_START) / SECONDS_PER_DAY
        assert 240 <= days <= 250

    def test_window_interval_consistent(self):
        assert STUDY_WINDOW.start == STUDY_START
        assert STUDY_WINDOW.end == STUDY_END


class TestGaps:
    def test_twitter_gaps_inside_window(self):
        for gap in TWITTER_GAPS:
            assert gap.start >= STUDY_START
            assert gap.end <= STUDY_END

    def test_fourchan_gaps_inside_window(self):
        for gap in FOURCHAN_GAPS:
            assert gap.start >= STUDY_START
            assert gap.end <= STUDY_END

    def test_twitter_gaps_disjoint_and_ordered(self):
        for a, b in zip(TWITTER_GAPS, TWITTER_GAPS[1:]):
            assert a.end <= b.start

    def test_longest_twitter_gap_is_nov_to_jan(self):
        longest = max(TWITTER_GAPS, key=lambda iv: iv.duration)
        assert longest.start == utc(2016, 11, 22)
        assert longest.end == utc(2017, 1, 14)

    def test_total_twitter_gap_days(self):
        # Oct 28-Nov 2 (6) + Nov 5-16 (12) + Nov 22-Jan 13 (53) + Feb 24-28 (5)
        total_days = sum(g.duration for g in TWITTER_GAPS) / SECONDS_PER_DAY
        assert 70 <= total_days <= 80


class TestProcesses:
    def test_eight_processes(self):
        assert len(HAWKES_PROCESSES) == 8

    def test_order_matches_paper_axes(self):
        assert HAWKES_PROCESSES[0] == "The_Donald"
        assert HAWKES_PROCESSES[-2:] == ("/pol/", "Twitter")

    def test_selected_subreddits_are_prefix(self):
        assert HAWKES_PROCESSES[:6] == SELECTED_SUBREDDITS

    def test_platform_codes(self):
        assert set(PLATFORM_CODES.values()) == {"4", "R", "T"}
        assert set(PLATFORM_CODES) == set(SEQUENCE_PLATFORMS)


class TestHawkesConfig:
    def test_defaults_match_paper(self):
        config = HawkesConfig()
        assert config.delta_t == 60
        assert config.max_lag_bins == 720  # 12 hours of minutes
        assert config.gap_trim_fraction == 0.10

    def test_frozen(self):
        config = HawkesConfig()
        with pytest.raises(AttributeError):
            config.delta_t = 30  # type: ignore[misc]

    def test_study_config_bundle(self):
        study = StudyConfig()
        assert study.hawkes.max_lag_bins == 720
        assert study.window == STUDY_WINDOW
        assert len(study.selected_subreddits) == 6
