"""Event bus: ordering, determinism, sources, and collector streams."""

import pytest

from repro.collection import (
    Dataset,
    DatasetRecord,
    FourchanCrawler,
    RedditDumpReader,
    TwitterStreamCollector,
    UrlOccurrence,
)
from repro.live import EventBus, dataset_source, jsonl_source
from repro.news.domains import NewsCategory

ALT = NewsCategory.ALTERNATIVE


def _record(post_id, t, community="Twitter", platform="twitter"):
    return DatasetRecord(
        post_id=post_id, platform=platform, community=community,
        author_id="u1", created_at=float(t),
        urls=(UrlOccurrence(f"http://breitbart.com/{post_id}",
                            "breitbart.com", ALT),))


def test_bus_merges_in_timestamp_order():
    a = [_record("a1", 1), _record("a2", 5), _record("a3", 9)]
    b = [_record("b1", 2), _record("b2", 3), _record("b3", 8)]
    bus = EventBus([("a", iter(a)), ("b", iter(b))])
    merged = list(bus.events())
    times = [record.created_at for _, record in merged]
    assert times == sorted(times)
    assert [record.post_id for _, record in merged] == [
        "a1", "b1", "b2", "a2", "b3", "a3"]
    assert [name for name, _ in merged] == ["a", "b", "b", "a", "b", "a"]


def test_bus_breaks_ties_by_source_registration_order():
    a = [_record("a1", 5)]
    b = [_record("b1", 5)]
    bus = EventBus([("b", iter(b)), ("a", iter(a))])
    assert [r.post_id for r in bus] == ["b1", "a1"]


def test_bus_rejects_unsorted_source():
    bad = [_record("x1", 5), _record("x2", 1)]
    bus = EventBus([("bad", iter(bad))])
    with pytest.raises(ValueError, match="not timestamp-ordered"):
        list(bus)


def test_bus_rejects_duplicate_source_name():
    bus = EventBus([("a", iter([]))])
    with pytest.raises(ValueError, match="duplicate"):
        bus.add_source("a", iter([]))


def test_dataset_source_sorts_records():
    dataset = Dataset([_record("x2", 9), _record("x1", 1)])
    replayed = list(dataset_source(dataset))
    assert [r.post_id for r in replayed] == ["x1", "x2"]


def test_jsonl_source_replays_saved_dataset(tmp_path):
    dataset = Dataset([_record("x1", 1), _record("x2", 9)])
    path = tmp_path / "saved.jsonl"
    dataset.save_jsonl(path)
    replayed = list(jsonl_source(path))
    assert replayed == dataset.records
    # and it feeds the bus directly
    bus = EventBus([("replay", jsonl_source(path))])
    assert [r.post_id for r in bus] == ["x1", "x2"]


def test_collector_streams_match_batch_collect(small_world):
    """stream() and collect() are the same logic, not forks."""
    twitter = TwitterStreamCollector(registry=small_world.registry, seed=0)
    assert (list(twitter.stream(small_world.twitter))
            == twitter.collect(small_world.twitter).records)
    reddit = RedditDumpReader(registry=small_world.registry)
    assert (list(reddit.stream(small_world.reddit))
            == reddit.collect(small_world.reddit).records)
    fourchan = FourchanCrawler(registry=small_world.registry)
    assert (list(fourchan.stream(small_world.fourchan))
            == fourchan.collect(small_world.fourchan).records)


def test_twitter_sampling_stream_is_repeatable(small_world):
    """Sub-1.0 sample rates draw from a fresh rng per stream() call."""
    collector = TwitterStreamCollector(registry=small_world.registry,
                                       sample_rate=0.5, seed=5)
    first = list(collector.stream(small_world.twitter))
    second = list(collector.stream(small_world.twitter))
    assert first == second
    assert collector.collect(small_world.twitter).records == first


def test_collector_streams_are_timestamp_ordered(small_world):
    for collector, platform in (
            (TwitterStreamCollector(registry=small_world.registry),
             small_world.twitter),
            (RedditDumpReader(registry=small_world.registry),
             small_world.reddit),
            (FourchanCrawler(registry=small_world.registry),
             small_world.fourchan)):
        times = [r.created_at for r in collector.stream(platform)]
        assert times == sorted(times)
