"""Tests for table rendering and CSV figure export."""

import csv

import numpy as np
import pytest

from repro.analysis.stats import Ecdf
from repro.reporting.figures import ecdf_series, write_series
from repro.reporting.tables import render_matrix_cells, render_table


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(["name", "count"],
                            [["alpha", 10], ["b", 20000]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "alpha" in text
        assert "20,000" in text

    def test_title(self):
        text = render_table(["a"], [[1]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_float_formatting(self):
        text = render_table(["v"], [[0.12345], [1234.5], [12.345]])
        assert "0.1235" in text  # 4 significant digits (rounded)
        assert "1,234" in text
        assert "12.3" in text

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text


class TestRenderMatrix:
    def test_cells_rendered(self):
        cells = [[["A: 1", "M: 2"] for _ in range(2)] for _ in range(2)]
        text = render_matrix_cells(["p1", "p2"], cells, title="Fig 10")
        assert "Fig 10" in text
        assert "A: 1" in text
        assert text.count("M: 2") == 4

    def test_row_labels_present(self):
        cells = [[["x"] for _ in range(2)] for _ in range(2)]
        text = render_matrix_cells(["The_Donald", "Twitter"], cells)
        assert "The_Donald" in text
        assert "Twitter" in text


class TestFigureSeries:
    def test_ecdf_series_log(self):
        ecdf = Ecdf([1, 10, 100])
        xs, ys = ecdf_series(ecdf, n_points=16)
        assert len(xs) == 16
        assert ys[-1] == pytest.approx(1.0)

    def test_ecdf_series_steps(self):
        ecdf = Ecdf([1, 2, 2, 3])
        xs, ys = ecdf_series(ecdf, log_grid=False)
        assert list(xs) == [1, 2, 3]

    def test_write_series(self, tmp_path):
        path = write_series(tmp_path / "fig" / "out.csv",
                            {"x": [1, 2, 3], "y": [0.1, 0.2]})
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["x", "y"]
        assert rows[1] == ["1", "0.1"]
        assert rows[3] == ["3", ""]  # ragged column padded

    def test_write_series_empty(self, tmp_path):
        path = write_series(tmp_path / "empty.csv", {"a": []})
        content = path.read_text().strip()
        assert content == "a"


class TestInfluenceSectionRendering:
    """Figure 10 report regression: undefined percent change is 'n/a'."""

    @staticmethod
    def _fake_influence(twitter_main_mean):
        from repro.config import HAWKES_PROCESSES
        from repro.core.influence import InfluenceResult, UrlFit
        from repro.news.domains import NewsCategory
        k = len(HAWKES_PROCESSES)
        twitter = HAWKES_PROCESSES.index("Twitter")

        def fit(url, category, tt_weight):
            weights = np.full((k, k), 0.05)
            weights[twitter, twitter] = tt_weight
            counts = np.ones(k, dtype=np.int64)
            return UrlFit(url=url, category=category,
                          background=np.full(k, 0.01), weights=weights,
                          event_counts=counts, n_bins=50,
                          log_likelihood=-1.0)
        fits = [fit("a", NewsCategory.ALTERNATIVE, 0.4),
                fit("m", NewsCategory.MAINSTREAM, twitter_main_mean)]
        corpus = [object()] * 4  # only len() is used when result is given
        return corpus, InfluenceResult(processes=HAWKES_PROCESSES,
                                       fits=fits)

    def test_zero_mainstream_mean_renders_na(self):
        from repro.reporting.study import _section_influence
        corpus, result = self._fake_influence(twitter_main_mean=0.0)
        text = _section_influence(None, max_urls=4, seed=0,
                                  corpus=corpus, result=result)
        assert "(n/a)" in text
        assert "nan" not in text
        assert "inf%" not in text

    def test_finite_percent_change_still_rendered(self):
        from repro.reporting.study import _section_influence
        corpus, result = self._fake_influence(twitter_main_mean=0.2)
        text = _section_influence(None, max_urls=4, seed=0,
                                  corpus=corpus, result=result)
        assert "+100.0%" in text
        assert "n/a" not in text
